// Cross-cutting property tests (parameterized sweeps) over the pieces the
// forecasting pipeline relies on: quantile/risk optimality, joint sorting,
// covariate reconstruction, and simulator invariants across all events.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "core/forecaster.hpp"
#include "core/metrics.hpp"
#include "core/parallel_engine.hpp"
#include "core/ranknet.hpp"
#include "features/window.hpp"
#include "simulator/season.hpp"
#include "telemetry/analysis.hpp"
#include "util/stats.hpp"

namespace {

using namespace ranknet;

// ---------------------------------------------------------------------
// ρ-risk: among constant predictors, the empirical ρ-quantile of the data
// minimizes ρ-risk. This is the property that makes 90-risk a meaningful
// score for the q90 forecast.
class RhoRiskProperty : public ::testing::TestWithParam<double> {};

TEST_P(RhoRiskProperty, QuantileMinimizesRisk) {
  const double rho = GetParam();
  util::Rng rng(17);
  std::vector<double> z;
  for (int i = 0; i < 400; ++i) z.push_back(rng.normal(10.0, 3.0));
  const double qstar = util::quantile(z, rho);
  const std::vector<double> pred_star(z.size(), qstar);
  const double risk_star = core::rho_risk(pred_star, z, rho);
  for (double delta : {-2.0, -0.7, 0.7, 2.0}) {
    const std::vector<double> pred(z.size(), qstar + delta);
    EXPECT_GE(core::rho_risk(pred, z, rho), risk_star - 1e-9)
        << "rho=" << rho << " delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Quantiles, RhoRiskProperty,
                         ::testing::Values(0.1, 0.5, 0.9));

// ---------------------------------------------------------------------
// Joint sorting: for any sampled values, each (sample, lap) slice becomes a
// permutation of 1..C, and sorting is monotone (higher raw value -> higher
// rank).
class SortToRanksProperty : public ::testing::TestWithParam<int> {};

TEST_P(SortToRanksProperty, ProducesPermutationsAndMonotonicity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t cars = 3 + static_cast<std::size_t>(GetParam()) % 7;
  const std::size_t samples = 5, horizon = 3;
  core::RaceSamples raw;
  for (std::size_t c = 0; c < cars; ++c) {
    tensor::Matrix m(samples, horizon);
    for (auto& v : m.flat()) v = rng.uniform(1.0, 33.0);
    raw.emplace(static_cast<int>(c) + 1, std::move(m));
  }
  const auto ranks = core::sort_to_ranks(raw);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t h = 0; h < horizon; ++h) {
      std::vector<double> slice;
      for (const auto& [car, m] : ranks) slice.push_back(m(s, h));
      std::sort(slice.begin(), slice.end());
      for (std::size_t i = 0; i < cars; ++i) {
        EXPECT_DOUBLE_EQ(slice[i], static_cast<double>(i + 1));
      }
      // Monotonicity vs raw values.
      for (const auto& [car_a, ma] : raw) {
        for (const auto& [car_b, mb] : raw) {
          if (ma(s, h) < mb(s, h)) {
            EXPECT_LT(ranks.at(car_a)(s, h), ranks.at(car_b)(s, h));
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SortToRanksProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------
// Covariate reconstruction: build_covariates recomputes age features from
// raw statuses; on ground-truth streams this must agree with the per-car
// transform for every event and car.
class CovariateConsistency
    : public ::testing::TestWithParam<const char*> {};

TEST_P(CovariateConsistency, AgeFeaturesMatchTransforms) {
  const auto race = sim::simulate_race({GetParam(), 2016, 120,
                                        sim::Usage::kTrain});
  features::CovariateConfig cfg;  // full
  for (int car_id : race.car_ids()) {
    const auto streams = features::StatusStreams::from_race(race, car_id);
    const auto covs = features::build_covariates(streams, cfg);
    const auto status = features::compute_status_features(race.car(car_id));
    for (std::size_t t = 0; t < covs.size(); ++t) {
      ASSERT_NEAR(covs[t][2] * 10.0, status.caution_laps[t], 1e-9);
      ASSERT_NEAR(covs[t][3] * 40.0, status.pit_age[t], 1e-9);
      ASSERT_EQ(covs[t][0], status.track_status[t]);
      ASSERT_EQ(covs[t][1], status.lap_status[t]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Events, CovariateConsistency,
                         ::testing::Values("Indy500", "Texas", "Iowa",
                                           "Pocono"));

// ---------------------------------------------------------------------
// Simulator invariants across every event preset.
class EventInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(EventInvariants, RecordsWellFormed) {
  const auto race =
      sim::simulate_race({GetParam(), 2017, 0, sim::Usage::kTrain});
  const auto track = sim::track_by_name(GetParam());
  EXPECT_EQ(race.num_laps(), track.total_laps);
  for (const auto& rec : race.records()) {
    EXPECT_GE(rec.rank, 1);
    EXPECT_LE(rec.rank, track.max_cars);
    EXPECT_GT(rec.lap_time, 0.3 * track.base_lap_seconds());
    EXPECT_GE(rec.time_behind_leader, 0.0);
  }
  // Pit stops are sparse and present.
  const double ratio = telemetry::pit_laps_ratio(race);
  EXPECT_GT(ratio, 0.005);
  EXPECT_LT(ratio, 0.06);
}

TEST_P(EventInvariants, WindowsCoverTrainingRaces) {
  const auto ds = sim::build_event_dataset(GetParam());
  features::CarVocab vocab(ds.train);
  auto wcfg = features::WindowConfig{};
  wcfg.encoder_length = 30;
  wcfg.stride = 8;
  const auto windows = features::build_windows(ds.train, vocab, wcfg);
  EXPECT_GT(windows.size(), 300u);
  for (const auto& w : windows) {
    ASSERT_EQ(w.target.size(), 32u);
    for (double rank : w.target) {
      ASSERT_GE(rank, 1.0);
      ASSERT_LE(rank, 40.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Events, EventInvariants,
                         ::testing::Values("Indy500", "Texas", "Iowa",
                                           "Pocono"));

// ---------------------------------------------------------------------
// End-to-end rank validity on PARALLEL-engine output: whatever the thread
// count and task partition did, jointly sorting the merged samples must
// yield a permutation of 1..N in every (sample, lap) slice, with raw-value
// ties broken by ascending car id (stable sort over map order).
TEST(ParallelEngineProperty, SortedRanksArePermutationsPerSlice) {
  const auto race =
      sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest});
  features::CarVocab vocab({race});
  core::SeqModelConfig cfg;
  cfg.cov_dim = features::CovariateConfig{}.dim();
  cfg.hidden = 8;
  cfg.embed_dim = 2;
  cfg.vocab = vocab.size();
  auto model = std::make_shared<core::LstmSeqModel>(cfg);
  model->set_scaler(features::StandardScaler(17.0, 9.0));
  core::RankNetForecaster forecaster(model, nullptr, vocab,
                                     features::CovariateConfig{},
                                     core::StatusSource::kOracle, "oracle");
  core::ParallelForecastEngine engine(forecaster, 2,
                                      /*max_cars_per_task=*/3);

  util::Rng rng(31);
  const auto raw = engine.forecast(race, 50, 4, 9, rng);
  ASSERT_FALSE(raw.empty());
  const auto ranks = core::sort_to_ranks(raw);
  const std::size_t cars = ranks.size();
  const std::size_t samples = ranks.begin()->second.rows();
  const std::size_t horizon = ranks.begin()->second.cols();

  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t h = 0; h < horizon; ++h) {
      std::vector<bool> seen(cars, false);
      for (const auto& [car_id, m] : ranks) {
        const double r = m(s, h);
        ASSERT_EQ(r, std::floor(r)) << "non-integer rank";
        const auto pos = static_cast<std::size_t>(r) - 1;
        ASSERT_LT(pos, cars) << "rank out of range at s=" << s << " h=" << h;
        ASSERT_FALSE(seen[pos]) << "duplicate rank at s=" << s << " h=" << h;
        seen[pos] = true;
      }
      // Ties in the raw samples resolve by ascending car id.
      for (auto a = raw.begin(); a != raw.end(); ++a) {
        for (auto b = std::next(a); b != raw.end(); ++b) {
          if (a->second(s, h) == b->second(s, h)) {
            EXPECT_LT(ranks.at(a->first)(s, h), ranks.at(b->first)(s, h))
                << "tie between cars " << a->first << " and " << b->first
                << " not broken by car id";
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Decode-tree properties: the tree decode's branch construction must be
// invisible in the bits. Randomized sweeps (seeded by the test parameter)
// over sample counts, partition compositions, and cache interleavings.

core::RaceSamples merge(std::initializer_list<core::RaceSamples> parts) {
  core::RaceSamples out;
  for (const auto& p : parts) {
    for (const auto& [car, m] : p) out.emplace(car, m);
  }
  return out;
}

bool bits_equal(const tensor::Matrix& a, const tensor::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.flat().data(), b.flat().data(),
                     a.flat().size() * sizeof(double)) == 0;
}

class DecodeTreeProperty : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    vocab_ = new features::CarVocab({*race_});
    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 8;
    cfg.embed_dim = 2;
    cfg.vocab = vocab_->size();
    model_ = std::make_shared<core::LstmSeqModel>(cfg);
    model_->set_scaler(features::StandardScaler(17.0, 9.0));
    pit_ = std::make_shared<core::PitModel>();
    pit_->set_scaler(features::StandardScaler(15.0, 6.0));
  }
  static void TearDownTestSuite() {
    model_.reset();
    pit_.reset();
    delete vocab_;
    delete race_;
  }

  static core::RankNetForecaster make(core::StatusSource source) {
    return core::RankNetForecaster(
        model_, source == core::StatusSource::kPitModel ? pit_ : nullptr,
        *vocab_, features::CovariateConfig{}, source, "prop");
  }

  static telemetry::RaceLog* race_;
  static features::CarVocab* vocab_;
  static std::shared_ptr<core::LstmSeqModel> model_;
  static std::shared_ptr<core::PitModel> pit_;
};
telemetry::RaceLog* DecodeTreeProperty::race_ = nullptr;
features::CarVocab* DecodeTreeProperty::vocab_ = nullptr;
std::shared_ptr<core::LstmSeqModel> DecodeTreeProperty::model_;
std::shared_ptr<core::PitModel> DecodeTreeProperty::pit_;

// Row streams are keyed by (car, sample), never by the batch shape: asking
// for fewer samples must reproduce a bit-identical prefix of the larger
// request, with the tree regrouping branches under both shapes.
TEST_P(DecodeTreeProperty, SampleCountPrefixInvariance) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto source :
       {core::StatusSource::kOracle, core::StatusSource::kPitModel}) {
    auto f = make(source);
    f.set_decode_mode(core::DecodeMode::kTree);
    util::Rng big_rng(seed);
    const auto big = f.forecast(*race_, 52, 4, 9, big_rng);
    util::Rng small_rng(seed);
    const auto small = f.forecast(*race_, 52, 4, 4, small_rng);
    ASSERT_EQ(big.size(), small.size());
    for (const auto& [car, bm] : big) {
      const auto& sm = small.at(car);
      ASSERT_EQ(sm.rows(), 4u);
      for (std::size_t s = 0; s < sm.rows(); ++s) {
        for (std::size_t h = 0; h < sm.cols(); ++h) {
          ASSERT_EQ(bm(s, h), sm(s, h))
              << "car " << car << " sample " << s << " lap " << h;
        }
      }
    }
  }
}

// Branch discovery happens per partition call: splitting the car set into
// random pieces (and visiting them in random order) regroups every branch,
// yet each car's bytes must match the single full-set call.
TEST_P(DecodeTreeProperty, PartitionCompositionInvariance) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng shuffle_rng(seed * 31 + 7);
  for (const auto source :
       {core::StatusSource::kOracle, core::StatusSource::kPitModel}) {
    auto f = make(source);
    f.set_decode_mode(core::DecodeMode::kTree);
    f.prepare(*race_);
    const auto cars = f.forecast_cars(*race_, 55);
    ASSERT_GT(cars.size(), 3u);
    const std::uint64_t base = shuffle_rng();
    const auto full =
        f.forecast_partition(*race_, 55, 3, 6, base, cars);

    // Random composition: cut the (shuffled) car list into 2-4 pieces.
    std::vector<int> shuffled = cars;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[shuffle_rng() % i]);
    }
    const std::size_t pieces = 2 + shuffle_rng() % 3;
    std::vector<std::vector<int>> parts(pieces);
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      parts[i % pieces].push_back(shuffled[i]);
    }
    core::RaceSamples merged;
    for (const auto& part : parts) {
      merged = merge({merged, f.forecast_partition(*race_, 55, 3, 6, base,
                                                   part)});
    }
    ASSERT_EQ(merged.size(), full.size());
    for (const auto& [car, m] : full) {
      EXPECT_TRUE(bits_equal(m, merged.at(car)))
          << status_source_name(source) << " car " << car;
    }
  }
}

// Cache hits must replay cold bytes under any interleaving of requests and
// thread counts: several engines share one cache, requests arrive in a
// randomized order with repeats, every repeat must equal its first compute.
TEST_P(DecodeTreeProperty, CacheHitsMatchColdUnderRandomInterleavings) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto f = make(core::StatusSource::kOracle);
  f.set_decode_mode(core::DecodeMode::kTree);
  auto cache = std::make_shared<core::ForecastCache>(16);
  std::vector<std::unique_ptr<core::ParallelForecastEngine>> engines;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    engines.push_back(
        std::make_unique<core::ParallelForecastEngine>(f, threads));
    engines.back()->set_forecast_cache(cache);
  }

  struct Request {
    int origin;
    std::uint64_t rng_seed;
  };
  const Request kRequests[] = {{50, 1}, {50, 2}, {55, 1}, {60, 3}};
  // Each request three times, randomly interleaved, on random engines.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < std::size(kRequests); ++i) {
    order.insert(order.end(), 3, i);
  }
  util::Rng shuffle_rng(seed * 101 + 13);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[shuffle_rng() % i]);
  }

  std::map<std::size_t, core::RaceSamples> first_seen;
  for (const std::size_t i : order) {
    auto& engine = *engines[shuffle_rng() % engines.size()];
    util::Rng rng(kRequests[i].rng_seed);
    auto out = engine.forecast(*race_, kRequests[i].origin, 3, 5, rng);
    const auto it = first_seen.find(i);
    if (it == first_seen.end()) {
      first_seen.emplace(i, std::move(out));
      continue;
    }
    ASSERT_EQ(out.size(), it->second.size());
    for (const auto& [car, m] : it->second) {
      EXPECT_TRUE(bits_equal(m, out.at(car)))
          << "request " << i << " car " << car;
    }
  }
  // Every repeat after the first compute of a request must have hit.
  EXPECT_LE(cache->size(), std::size(kRequests));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeTreeProperty,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Dataset determinism: the same spec and seed always produce the same race.
TEST(Determinism, SimulateRaceIsAFunctionOfSpecAndSeed) {
  const sim::RaceSpec spec{"Texas", 2018, 248, sim::Usage::kTest};
  const auto a = sim::simulate_race(spec, 777);
  const auto b = sim::simulate_race(spec, 777);
  const auto c = sim::simulate_race(spec, 778);
  EXPECT_EQ(a.num_records(), b.num_records());
  EXPECT_EQ(a.to_csv().to_string(), b.to_csv().to_string());
  EXPECT_NE(a.to_csv().to_string(), c.to_csv().to_string());
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"
#include "tensor/opcount.hpp"
#include "tensor/serialize.hpp"
#include "tensor/view.hpp"
#include "tensor/workspace.hpp"

#include <sstream>

namespace {

using ranknet::tensor::Kernel;
using ranknet::tensor::Matrix;
using ranknet::tensor::OpCounters;
using ranknet::util::Rng;

/// Reference O(n^3) gemm with explicit index transposition.
Matrix naive_gemm(double alpha, const Matrix& a, bool ta, const Matrix& b,
                  bool tb, double beta, Matrix c) {
  const std::size_t m = ta ? a.cols() : a.rows();
  const std::size_t k = ta ? a.rows() : a.cols();
  const std::size_t n = tb ? b.rows() : b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double av = ta ? a(p, i) : a(i, p);
        const double bv = tb ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
  }
  return c;
}

class GemmParamTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int, int, int>> {
};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const auto [ta, tb, m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n + (ta ? 1 : 0) +
                                     (tb ? 2 : 0)));
  const Matrix a = ta ? Matrix::randn(k, m, rng) : Matrix::randn(m, k, rng);
  const Matrix b = tb ? Matrix::randn(n, k, rng) : Matrix::randn(k, n, rng);
  Matrix c = Matrix::randn(m, n, rng);
  const double alpha = 1.3, beta = 0.7;

  const Matrix expected = naive_gemm(alpha, a, ta, b, tb, beta, c);
  ranknet::tensor::gemm(alpha, a, ta, b, tb, beta, c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.flat()[i], expected.flat()[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAndShapes, GemmParamTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 3, 8), ::testing::Values(1, 5, 16),
                       ::testing::Values(1, 4, 9)));

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(ranknet::tensor::gemm(1.0, a, false, b, false, 0.0, c),
               std::invalid_argument);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Rng rng(3);
  const Matrix a = Matrix::randn(4, 4, rng);
  const Matrix b = Matrix::randn(4, 4, rng);
  Matrix c(4, 4, std::numeric_limits<double>::quiet_NaN());
  ranknet::tensor::gemm(1.0, a, false, b, false, 0.0, c);
  for (double v : c.flat()) EXPECT_TRUE(std::isfinite(v));
}

/// Runs `body` once per CPU-supported kernel variant, restoring the entry
/// variant afterwards. The remainder tests below must hold for every
/// variant, not just whichever one dispatch picked at startup.
template <typename Fn>
void for_each_variant(Fn body) {
  namespace tk = ranknet::tensor::kernels;
  const tk::Variant saved = tk::active_variant();
  for (const auto v : {tk::Variant::kScalar, tk::Variant::kAvx2}) {
    if (!tk::cpu_supports(v)) continue;
    ASSERT_TRUE(tk::set_variant(v).ok());
    body(tk::variant_name(v));
  }
  ASSERT_TRUE(tk::set_variant(saved).ok());
}

TEST(Gemm, RemainderShapesMatchNaiveUnderEachVariant) {
  // Shapes straddling every vector-width boundary: partial 4-row blocks,
  // 8/4/masked column tails, odd k, and the n == 1 GEMV route. A bug in
  // the remainder handling of a blocked kernel shows up exactly here.
  const struct {
    int m, k, n;
  } shapes[] = {{1, 7, 1},  {2, 3, 33}, {5, 13, 9},
                {6, 20, 1}, {7, 37, 12}, {13, 9, 5}};
  for_each_variant([&](const char* variant) {
    for (const auto& s : shapes) {
      Rng rng(static_cast<std::uint64_t>(s.m * 1000 + s.k * 10 + s.n));
      const Matrix a = Matrix::randn(s.m, s.k, rng);
      const Matrix b = Matrix::randn(s.k, s.n, rng);
      Matrix c = Matrix::randn(s.m, s.n, rng);
      const Matrix expected = naive_gemm(0.7, a, false, b, false, 1.3, c);
      ranknet::tensor::gemm(0.7, a, false, b, false, 1.3, c);
      for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c.flat()[i], expected.flat()[i], 1e-10)
            << variant << " " << s.m << "x" << s.k << "x" << s.n;
      }
    }
  });
}

TEST(Gemm, ZeroRowBatchIsANoOpUnderEachVariant) {
  // A K=0 sample batch degenerates to an (0 x k) GEMM: nothing to compute,
  // nothing to touch, no crash — under either variant.
  for_each_variant([&](const char* variant) {
    const Matrix a(0, 5);
    const Matrix b(5, 9);
    Matrix c(0, 9);
    ranknet::tensor::gemm(1.0, a, false, b, false, 0.0, c);
    EXPECT_TRUE(c.empty()) << variant;
  });
}

TEST(Kernels, LstmCellStepMatchesNaiveOnOddHiddenSizes) {
  // Full packed cell against a from-scratch std::exp reference, at hidden
  // sizes that are not multiples of the 4-lane width, batches including the
  // K=1 degenerate. Catches tail overruns/underruns that cross-variant
  // diffing alone could miss (both variants sharing the same wrong tail).
  namespace t = ranknet::tensor;
  for_each_variant([&](const char* variant) {
    for (const std::size_t hidden : {std::size_t{5}, std::size_t{13}}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{3}}) {
        const std::size_t in = 7;
        Rng rng(17 + hidden + batch);
        const Matrix xh = Matrix::randn(batch, in + hidden, rng);
        const Matrix w = Matrix::randn(in + hidden, 4 * hidden, rng);
        const Matrix bias_m = Matrix::randn(1, 4 * hidden, rng);
        const Matrix c0 = Matrix::randn(batch, hidden, rng);

        t::Workspace ws;
        ws.begin();
        auto c = ws.take(batch, hidden);
        auto h = ws.take(batch, hidden);
        for (std::size_t i = 0; i < batch * hidden; ++i) {
          c.data()[i] = c0.flat()[i];
        }
        t::LstmStepScratch scratch{
            ws.take(batch, 4 * hidden), ws.take(batch, 3 * hidden),
            ws.take(batch, hidden),     ws.take(batch, hidden),
            ws.take(batch, hidden),     ws.take(batch, hidden),
            ws.take(batch, hidden),     ws.take(batch, hidden)};
        t::lstm_cell_step(t::ConstMatrixView(xh), t::ConstMatrixView(w),
                          t::ConstMatrixView(bias_m).row(0), c, h, scratch);

        const auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
        for (std::size_t r = 0; r < batch; ++r) {
          for (std::size_t j = 0; j < hidden; ++j) {
            double g[4];
            for (int gate = 0; gate < 4; ++gate) {
              double acc = 0.0;
              for (std::size_t p = 0; p < in + hidden; ++p) {
                acc += xh(r, p) * w(p, gate * hidden + j);
              }
              g[gate] = acc + bias_m(0, gate * hidden + j);
            }
            const double iv = sigmoid(g[0]), fv = sigmoid(g[1]);
            const double gv = std::tanh(g[2]), ov = sigmoid(g[3]);
            const double cv = fv * c0(r, j) + iv * gv;
            EXPECT_NEAR(c(r, j), cv, 1e-9)
                << variant << " c H=" << hidden << " B=" << batch;
            EXPECT_NEAR(h(r, j), ov * std::tanh(cv), 1e-9)
                << variant << " h H=" << hidden << " B=" << batch;
          }
        }
      }
    }
  });
}

TEST(Kernels, ZeroLengthPointwiseIsANoOp) {
  namespace tk = ranknet::tensor::kernels;
  for_each_variant([&](const char* variant) {
    const auto& d = tk::dispatch();
    double sentinel = 42.0;
    d.sigmoid(&sentinel, 0);
    d.tanh(&sentinel, 0);
    d.hadamard(&sentinel, &sentinel, &sentinel, 0);
    d.hadamard_add(&sentinel, &sentinel, &sentinel, 0);
    d.add_bias_rows(&sentinel, &sentinel, 0, 3);
    EXPECT_DOUBLE_EQ(sentinel, 42.0) << variant;
  });
}

TEST(Kernels, HadamardAndAxpy) {
  Matrix a(2, 2), b(2, 2), out(2, 2);
  a(0, 0) = 2;
  a(1, 1) = 3;
  b(0, 0) = 4;
  b(1, 1) = 5;
  ranknet::tensor::hadamard(a, b, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 15.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  ranknet::tensor::axpy(2.0, a, out);
  EXPECT_DOUBLE_EQ(out(0, 0), 12.0);
}

TEST(Kernels, BiasAndRowSums) {
  Matrix m(2, 3, 1.0);
  const std::vector<double> bias{1.0, 2.0, 3.0};
  ranknet::tensor::add_bias_rows(m, bias);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
  std::vector<double> sums(3, 0.0);
  ranknet::tensor::sum_rows(m, sums);
  EXPECT_DOUBLE_EQ(sums[0], 4.0);
  EXPECT_DOUBLE_EQ(sums[2], 8.0);
}

TEST(Kernels, SigmoidTanhSoftplusValues) {
  Matrix m(1, 3);
  m(0, 0) = 0.0;
  m(0, 1) = 100.0;
  m(0, 2) = -100.0;
  Matrix s = m;
  ranknet::tensor::sigmoid_inplace(s);
  EXPECT_NEAR(s(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(s(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(s(0, 2), 0.0, 1e-12);
  Matrix t = m;
  ranknet::tensor::tanh_inplace(t);
  EXPECT_NEAR(t(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(t(0, 1), 1.0, 1e-12);
  Matrix p = m;
  ranknet::tensor::softplus_inplace(p);
  EXPECT_NEAR(p(0, 0), std::log(2.0), 1e-12);
  EXPECT_NEAR(p(0, 1), 100.0, 1e-9);   // large x: softplus(x) ~ x
  EXPECT_NEAR(p(0, 2), 0.0, 1e-12);    // very negative: ~ 0, not -inf
}

TEST(Kernels, SoftmaxRowsSumToOneAndOrder) {
  Rng rng(4);
  Matrix m = Matrix::randn(5, 7, rng, 3.0);
  Matrix original = m;
  ranknet::tensor::softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_GT(m(r, c), 0.0);
      total += m(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    // Softmax preserves ordering.
    for (std::size_t c = 1; c < m.cols(); ++c) {
      EXPECT_EQ(original(r, c) > original(r, c - 1),
                m(r, c) > m(r, c - 1));
    }
  }
}

TEST(OpCount, GemmBooksFlops) {
  auto& counters = OpCounters::instance();
  counters.reset();
  Matrix a(8, 16), b(16, 4), c(8, 4);
  ranknet::tensor::gemm(1.0, a, false, b, false, 0.0, c);
  const auto& s = counters.stats(Kernel::kMatMul);
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.flops, 2ull * 8 * 16 * 4);
  EXPECT_GT(s.bytes, 0u);
  counters.reset();
  EXPECT_EQ(counters.stats(Kernel::kMatMul).calls, 0u);
}

TEST(OpCount, ProfilingRecordsTime) {
  auto& counters = OpCounters::instance();
  counters.reset();
  counters.set_profiling(true);
  Rng rng(5);
  Matrix a = Matrix::randn(64, 64, rng);
  Matrix b = Matrix::randn(64, 64, rng);
  Matrix c(64, 64);
  ranknet::tensor::gemm(1.0, a, false, b, false, 0.0, c);
  counters.set_profiling(false);
  EXPECT_GT(counters.stats(Kernel::kMatMul).seconds, 0.0);
  EXPECT_GT(counters.stats(Kernel::kMatMul).gflops(), 0.0);
  counters.reset();
}

TEST(Matrix, SerializeRoundTrip) {
  Rng rng(6);
  const Matrix m = Matrix::randn(7, 3, rng);
  std::stringstream ss;
  ranknet::tensor::write_matrix(ss, m);
  const Matrix back = ranknet::tensor::read_matrix(ss);
  EXPECT_TRUE(m == back);
}

TEST(Matrix, ReshapeAndRowSpan) {
  Matrix m(2, 6, 1.0);
  m(1, 5) = 9.0;
  m.reshape(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(2, 3), 9.0);
  auto row = m.row(2);
  EXPECT_EQ(row.size(), 4u);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(2, 0), 7.0);
}

// ---- aliasing contract (view kernels) -----------------------------------
// The inference runtime feeds arena views back into kernels as both input
// and output (e.g. c = f.c + i.g updates c in place), so the documented
// "exact alias" cases must produce the same values as the unaliased call.

TEST(KernelAliasing, HadamardOutAliasesEitherInput) {
  Rng rng(11);
  const Matrix a0 = Matrix::randn(3, 5, rng);
  const Matrix b0 = Matrix::randn(3, 5, rng);
  Matrix expected(3, 5);
  ranknet::tensor::hadamard(a0, b0, expected);

  Matrix a = a0;  // out == a
  ranknet::tensor::hadamard(ranknet::tensor::ConstMatrixView(a), b0,
                            ranknet::tensor::MatrixView(a));
  EXPECT_TRUE(a == expected);

  Matrix b = b0;  // out == b
  ranknet::tensor::hadamard(a0, ranknet::tensor::ConstMatrixView(b),
                            ranknet::tensor::MatrixView(b));
  EXPECT_TRUE(b == expected);

  Matrix s = a0;  // out == a == b (squaring in place)
  ranknet::tensor::hadamard(ranknet::tensor::ConstMatrixView(s),
                            ranknet::tensor::ConstMatrixView(s),
                            ranknet::tensor::MatrixView(s));
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(s.flat()[i], a0.flat()[i] * a0.flat()[i]);
  }
}

TEST(KernelAliasing, HadamardAddOutAliasesEitherInput) {
  Rng rng(12);
  const Matrix a0 = Matrix::randn(4, 3, rng);
  const Matrix b0 = Matrix::randn(4, 3, rng);

  Matrix expected = a0;  // out == a: a += a .* b
  ranknet::tensor::hadamard_add(a0, b0, expected);
  Matrix a = a0;
  ranknet::tensor::hadamard_add(ranknet::tensor::ConstMatrixView(a), b0,
                                ranknet::tensor::MatrixView(a));
  EXPECT_TRUE(a == expected);

  Matrix expected_b = b0;  // out == b: b += a .* b
  ranknet::tensor::hadamard_add(a0, b0, expected_b);
  Matrix b = b0;
  ranknet::tensor::hadamard_add(a0, ranknet::tensor::ConstMatrixView(b),
                                ranknet::tensor::MatrixView(b));
  EXPECT_TRUE(b == expected_b);
}

TEST(KernelAliasing, SoftmaxRowsViewMatchesMatrixOverload) {
  Rng rng(13);
  Matrix m = Matrix::randn(3, 6, rng);
  Matrix expected = m;
  ranknet::tensor::softmax_rows(expected);
  // View overload over the same storage (in place by design).
  ranknet::tensor::softmax_rows(ranknet::tensor::MatrixView(m));
  EXPECT_TRUE(m == expected);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) total += m(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

// ---- workspace arena ----------------------------------------------------

TEST(Workspace, SteadyStateReusesBlocksWithoutAllocating) {
  ranknet::tensor::Workspace ws;
  ws.begin();
  auto v1 = ws.take(8, 16);
  auto v2 = ws.take_zeroed(4, 4);
  for (double x : v2.flat()) EXPECT_DOUBLE_EQ(x, 0.0);
  const std::size_t allocs_warm = ws.block_allocs();
  EXPECT_GE(allocs_warm, 1u);
  const double* p1 = v1.data();

  // Same shapes next epoch: same storage, no new blocks.
  for (int epoch = 0; epoch < 3; ++epoch) {
    ws.begin();
    auto w1 = ws.take(8, 16);
    auto w2 = ws.take(4, 4);
    EXPECT_EQ(w1.data(), p1);
    EXPECT_EQ(w2.rows(), 4u);
    EXPECT_EQ(ws.block_allocs(), allocs_warm);
  }
}

TEST(Workspace, GrowthKeepsOutstandingViewsValid) {
  ranknet::tensor::Workspace ws;
  ws.begin();
  auto small = ws.take(2, 2);
  small.fill(3.5);
  // Force growth past the first block; `small` must still read 3.5
  // (blocks never reallocate within an epoch).
  auto big = ws.take(512, 512);
  big.set_zero();
  for (double x : small.flat()) EXPECT_DOUBLE_EQ(x, 3.5);
  EXPECT_GE(ws.capacity(), small.size() + big.size());
}

TEST(Workspace, CountersBookEpochsTakesAndReuse) {
  auto& counters = ranknet::tensor::WorkspaceCounters::instance();
  const auto before = counters.snapshot();
  ranknet::tensor::Workspace ws;
  ws.begin();
  (void)ws.take(16, 16);
  ws.begin();  // warm epoch: no growth
  (void)ws.take(16, 16);
  const auto after = counters.snapshot();
  EXPECT_EQ(after.epochs - before.epochs, 2u);
  EXPECT_EQ(after.takes - before.takes, 2u);
  EXPECT_GE(after.block_allocs - before.block_allocs, 1u);
  EXPECT_GE(after.reused_epochs - before.reused_epochs, 1u);
  EXPECT_GT(after.high_water_bytes, 0u);
}

}  // namespace

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <set>
#include <utility>
#include <stdexcept>
#include <vector>

#include "util/backoff.hpp"
#include "util/csv.hpp"
#include "util/socket.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ranknet::util;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(9);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(st.mean(), 2.0, 0.1);
  EXPECT_NEAR(st.stddev(), 3.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(10);
  for (double lambda : {0.5, 3.0, 12.0}) {
    RunningStats st;
    for (int i = 0; i < 5000; ++i) st.add(rng.poisson(lambda));
    EXPECT_NEAR(st.mean(), lambda, 0.15 * lambda + 0.05);
  }
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.truncated_normal(10.0, 5.0, 8.0, 12.0);
    EXPECT_GE(x, 8.0);
    EXPECT_LE(x, 12.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// ---------------------------------------------------------------------------
// Degenerate-parameter hardening (satellite of the reduced-precision PR,
// matching the NaN-deadline guard pattern in serve). Pre-fix behaviour:
// exponential(rate<0) returned a NEGATIVE delay, exponential(NaN) returned
// NaN, and poisson(+inf) fed NaN through std::lround (UB).

TEST(Rng, ExponentialDegenerateRateIsInfiniteDelay) {
  Rng rng(11);
  // rate <= 0 or NaN: "the event never fires" — +inf, never negative/NaN.
  EXPECT_EQ(rng.exponential(0.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(rng.exponential(-3.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(rng.exponential(std::numeric_limits<double>::quiet_NaN()),
            std::numeric_limits<double>::infinity());
  // rate = +inf: the event fires immediately.
  EXPECT_EQ(rng.exponential(std::numeric_limits<double>::infinity()), 0.0);
  // Regular rates keep working.
  const double d = rng.exponential(1.5);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GE(d, 0.0);
}

TEST(Rng, ExponentialGuardPreservesStreamPosition) {
  // The guard must consume exactly one uniform (like the regular path), so
  // a degenerate draw does not shift every later draw of the stream.
  Rng a(21), b(21);
  (void)a.exponential(0.0);
  (void)b.exponential(1.0);
  EXPECT_EQ(a(), b());
}

TEST(Rng, PoissonDegenerateLambdaIsZeroWithoutDraws) {
  Rng a(31), b(31);
  EXPECT_EQ(a.poisson(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(a.poisson(std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(a.poisson(-std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(a.poisson(-2.0), 0);
  // Degenerate lambdas consume no generator state, exactly like the
  // existing lambda <= 0 early-out.
  EXPECT_EQ(a(), b());
}

TEST(Rng, PoissonHugeLambdaSaturatesInsteadOfOverflowing) {
  Rng rng(41);
  // Pre-fix, normal(1e18, 1e9) -> lround on a value far outside int range
  // (UB). Now it saturates deterministically.
  EXPECT_EQ(rng.poisson(1e18), std::numeric_limits<int>::max());
}

// ---------------------------------------------------------------------------
// Rng::stream disjoint-family property test: the 3-key overload's doc
// claims 2-key and 3-key derivations never produce the same stream, and
// that nearby key tuples get independent streams. Hammer a dense grid of
// nearby tuples and require every derived stream's 128-bit signature
// (first two outputs) to be unique across BOTH families. (The claim is per
// key tuple under independently chosen bases; the (base, k1) fold is affine
// in base, so bases planted exactly golden-ratio steps apart alias — see
// the caveat on stream() — which is why the bases here are generic.)

TEST(Rng, StreamFamiliesDisjointAcrossNearbyKeyTuples) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> signatures;
  std::size_t streams = 0;
  const std::uint64_t bases[] = {0, 1, 0xdeadbeefcafef00dULL};
  for (const std::uint64_t base : bases) {
    for (std::uint64_t k1 = 0; k1 < 8; ++k1) {
      for (std::uint64_t k2 = 0; k2 < 8; ++k2) {
        Rng two = Rng::stream(base, k1, k2);
        ASSERT_TRUE(signatures.emplace(two(), two()).second)
            << "2-key collision at base=" << base << " k1=" << k1
            << " k2=" << k2;
        ++streams;
        for (std::uint64_t k3 = 0; k3 < 4; ++k3) {
          Rng three = Rng::stream(base, k1, k2, k3);
          ASSERT_TRUE(signatures.emplace(three(), three()).second)
              << "3-key collision at base=" << base << " k1=" << k1
              << " k2=" << k2 << " k3=" << k3;
          ++streams;
        }
      }
    }
  }
  EXPECT_EQ(signatures.size(), streams);
}

TEST(Rng, StreamIsPureFunctionOfKeyTuple) {
  Rng a = Rng::stream(7, 3, 5);
  Rng b = Rng::stream(7, 3, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
  Rng c = Rng::stream(7, 3, 5, 0);
  Rng d = Rng::stream(7, 3, 5, 0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c(), d());
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, QuantileIsMonotoneInQ) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.normal());
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(Stats, EmptyInputsGiveNan) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(mean(empty)));
  EXPECT_TRUE(std::isnan(quantile(empty, 0.5)));
}

TEST(Stats, HistogramCountsInRangeSamples) {
  const std::vector<double> xs{0.1, 0.2, 0.55, 0.9};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_NEAR(h.frequency(0), 0.5, 1e-12);
}

// Regression: out-of-range samples used to be clamped into the edge bins,
// inflating edge-bin frequencies; they must be tallied separately instead.
TEST(Stats, HistogramOutOfRangeSamplesAreNotClamped) {
  const std::vector<double> xs{-1.0, -0.5, 0.1, 0.2, 0.55, 0.9,
                               1.0,  2.0,  std::nan("")};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 2u);     // only 0.1, 0.2 — no clamped -1/-0.5
  EXPECT_EQ(h.counts[1], 2u);     // only 0.55, 0.9 — hi is exclusive
  EXPECT_EQ(h.underflow, 2u);     // -1.0, -0.5
  EXPECT_EQ(h.overflow, 3u);      // 1.0, 2.0, NaN
  EXPECT_EQ(h.total(), 4u);       // in-range mass only
  EXPECT_NEAR(h.frequency(0), 0.5, 1e-12);
  EXPECT_NEAR(h.frequency(1), 0.5, 1e-12);
}

TEST(Stats, EcdfStepFunction) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto e = ecdf(xs);
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_NEAR(e(1.0), 1.0 / 3, 1e-12);
  EXPECT_NEAR(e(2.5), 2.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(e(3.0), 1.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(6);
  std::vector<double> xs;
  RunningStats st;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.uniform(-3, 5));
    st.add(xs.back());
  }
  EXPECT_NEAR(st.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(st.min(), ranknet::util::min(xs), 1e-12);
  EXPECT_NEAR(st.max(), ranknet::util::max(xs), 1e-12);
}

// Regression: RunningStats::variance() used to report 0.0 for n < 2, so a
// single-sample latency series read as "zero spread measured" while the
// batch util::variance() reported NaN. Both must use the NaN sentinel.
TEST(Stats, DegenerateVarianceIsNanForBothAccumulators) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(variance(empty)));

  RunningStats none;
  EXPECT_TRUE(std::isnan(none.variance()));
  EXPECT_TRUE(std::isnan(none.stddev()));

  RunningStats one;
  one.add(3.5);
  EXPECT_TRUE(std::isnan(one.variance()));

  RunningStats two;
  two.add(1.0);
  two.add(3.0);
  EXPECT_DOUBLE_EQ(two.variance(), 2.0);  // n >= 2 unaffected
}

TEST(StringUtil, SplitTrimLower) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(trim(parts[1]), "b");
  EXPECT_EQ(lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("ranknet", "rank"));
  EXPECT_FALSE(starts_with("rank", "ranknet"));
}

TEST(StringUtil, FormatAndJoin) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
}

TEST(Csv, RoundTrip) {
  CsvTable t({"A", "B"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  const auto parsed = CsvTable::parse(t.to_string());
  EXPECT_EQ(parsed.num_rows(), 2u);
  EXPECT_EQ(parsed.cell(1, "B"), "y");
  EXPECT_EQ(parsed.cell_long(0, "A"), 1);
}

TEST(Csv, ErrorsOnBadShapeAndMissingColumn) {
  CsvTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_THROW(t.col("C"), std::out_of_range);
}

TEST(Status, CarriesCodeAndMessage) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);

  const Status s = Status::corrupt_data("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_NE(s.to_string().find("bad bytes"), std::string::npos);
  EXPECT_NE(s.to_string().find("CORRUPT_DATA"), std::string::npos);
}

TEST(Status, ResultHoldsValueOrStatus) {
  Result<int> good(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(good.value_or(9), 5);

  Result<int> bad(Status::not_found("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Status, StrictDoubleParserRejectsGarbage) {
  EXPECT_DOUBLE_EQ(parse_finite_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_finite_double("-1e3").value(), -1000.0);
  for (const char* bad :
       {"", "  ", "abc", "1.5x", "nan", "NaN", "inf", "-inf", "1e999"}) {
    EXPECT_FALSE(parse_finite_double(bad).ok()) << "'" << bad << "'";
  }
}

TEST(Status, StrictLongParserRejectsGarbage) {
  EXPECT_EQ(parse_long("42").value(), 42);
  EXPECT_EQ(parse_long("-7").value(), -7);
  for (const char* bad : {"", "4.5", "9x", "99999999999999999999"}) {
    EXPECT_FALSE(parse_long(bad).ok()) << "'" << bad << "'";
  }
}

TEST(Csv, TryParseRejectsMalformedInput) {
  // Truncated row (2 cells under a 3-column header).
  auto truncated = CsvTable::try_parse("A,B,C\n1,2\n");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruptData);

  // Over-long row.
  EXPECT_FALSE(CsvTable::try_parse("A,B\n1,2,3\n").ok());

  // Well-formed text parses.
  auto good = CsvTable::try_parse("A,B\n1,2\n3,4\n");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().num_rows(), 2u);
}

TEST(Csv, TryCellRejectsNonFiniteAndNonNumeric) {
  CsvTable t({"A"});
  for (const char* cell : {"nan", "inf", "1.5x", ""}) {
    t = CsvTable({"A"});
    t.add_row({cell});
    EXPECT_FALSE(t.try_cell_double(0, "A").ok()) << "'" << cell << "'";
  }
  t = CsvTable({"A"});
  t.add_row({"2.5"});
  EXPECT_TRUE(t.try_cell_double(0, "A").ok());
  EXPECT_FALSE(t.try_cell_long(0, "A").ok());  // 2.5 is not an integer
  // The throwing accessors keep their legacy exception type.
  EXPECT_THROW((void)t.cell_long(0, "A"), std::runtime_error);
}

TEST(Csv, TryLoadMissingFileIsStatusNotException) {
  auto r = CsvTable::try_load("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().to_string().empty());
}

TEST(ThreadPool, ThrowingTaskPropagatesThroughFutureWithoutDeadlock) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task"); });
  EXPECT_THROW(bad.get(), std::runtime_error);

  // The worker survives the exception: the pool still runs new tasks and
  // its destructor joins cleanly (this test returning proves no deadlock).
  auto good = pool.submit([] { return 17; });
  EXPECT_EQ(good.get(), 17);
  EXPECT_EQ(pool.escaped_exceptions(), 0u);  // captured, not escaped
}

TEST(ThreadPool, ManyThrowingTasksDoNotWedgeTheQueue) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([] { throw 42; }));
  }
  for (auto& f : futures) EXPECT_THROW(f.get(), int);
  auto alive = pool.submit([] { return true; });
  EXPECT_TRUE(alive.get());
}

// Bounded-wait teardown: a pool destroyed while a long task occupies its
// only worker must wait for THAT task only — the backlog queued behind it
// is abandoned, with every abandoned future reporting broken_promise
// instead of silently losing its task (or, worse, the destructor running
// the whole backlog and stalling shutdown behind a stalled client).
TEST(ThreadPool, DestructorAbandonsBacklogBehindStalledTask) {
  std::promise<void> release;
  auto release_future = release.get_future().share();
  std::atomic<int> backlog_ran{0};
  std::future<void> stalled;
  std::vector<std::future<int>> backlog;
  // Released from a side thread well after the destructor has swapped the
  // backlog out — the worker is provably still inside the stalled task when
  // teardown begins.
  std::thread releaser;
  {
    ThreadPool pool(1);
    std::promise<void> started;
    stalled = pool.submit([&started, release_future] {
      started.set_value();
      release_future.wait();
    });
    // Don't race teardown against dispatch: only once the worker is inside
    // the stalled task is the backlog guaranteed to be "queued, not run".
    started.get_future().wait();
    for (int i = 0; i < 8; ++i) {
      backlog.push_back(pool.submit([&backlog_ran] {
        ++backlog_ran;
        return 1;
      }));
    }
    releaser = std::thread([&release] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      release.set_value();
    });
  }
  releaser.join();
  stalled.get();  // the running task completed normally
  // Tasks that never started were abandoned, not run at teardown...
  EXPECT_EQ(backlog_ran.load(), 0);
  // ...and their futures fail loudly instead of hanging or vanishing.
  for (auto& f : backlog) {
    try {
      f.get();
      FAIL() << "abandoned task's future returned a value";
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
    }
  }
}

TEST(RngStream, ThreeKeyStreamIsPureAndKeySensitive) {
  // The fleet's job-base derivation (FleetEngine::job_base) rides this
  // overload: same keys -> same stream, any key nudged -> decorrelated.
  Rng a = Rng::stream(7, 1, 2, 3);
  Rng b = Rng::stream(7, 1, 2, 3);
  EXPECT_EQ(a(), b());
  const std::uint64_t base = Rng::stream(7, 1, 2, 3)();
  EXPECT_NE(base, Rng::stream(8, 1, 2, 3)());
  EXPECT_NE(base, Rng::stream(7, 2, 2, 3)());
  EXPECT_NE(base, Rng::stream(7, 1, 3, 3)());
  EXPECT_NE(base, Rng::stream(7, 1, 2, 4)());
  // The 3-key stream must not collide with the 2-key stream on shared
  // prefixes (distinct derivation chains).
  EXPECT_NE(base, Rng::stream(7, 1)());
}

TEST(ThreadPool, QueueDepthCountsOnlyUnstartedTasks) {
  std::promise<void> release;
  auto release_future = release.get_future().share();
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(), 0u);
  std::promise<void> started;
  auto stalled = pool.submit([&started, release_future] {
    started.set_value();
    release_future.wait();
  });
  started.get_future().wait();  // the worker is INSIDE the stalled task
  // A running task is not "queued"; everything submitted behind it is.
  EXPECT_EQ(pool.queue_depth(), 0u);
  std::vector<std::future<int>> backlog;
  for (int i = 0; i < 5; ++i) {
    backlog.push_back(pool.submit([] { return 1; }));
  }
  EXPECT_EQ(pool.queue_depth(), 5u);
  release.set_value();
  stalled.get();
  for (auto& f : backlog) EXPECT_EQ(f.get(), 1);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, QueueDepthIsZeroInInlineMode) {
  ThreadPool pool(0);
  auto f = pool.submit([] { return 2; });
  EXPECT_EQ(f.get(), 2);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, DestructorDoesNotLoseExceptionsFromRunningTasks) {
  std::future<void> thrower;
  {
    ThreadPool pool(1);
    std::promise<void> started;
    thrower = pool.submit([&started] {
      started.set_value();
      throw std::runtime_error("mid-teardown");
    });
    // Ensure the task is *running* when the destructor begins — a task
    // still queued would be abandoned (broken_promise), which is the other
    // test's contract, not this one's.
    started.get_future().wait();
  }
  EXPECT_THROW(thrower.get(), std::runtime_error);
}

TEST(Backoff, DelaysGrowGeometricallyUpToTheCeiling) {
  BackoffConfig cfg;
  cfg.initial_seconds = 0.01;
  cfg.multiplier = 2.0;
  cfg.max_seconds = 0.05;
  cfg.jitter = 0.0;  // deterministic schedule
  cfg.max_attempts = 6;
  ExponentialBackoff backoff(cfg, 1);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.01);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.02);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.04);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.05);  // clamped
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.05);
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.05);
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.0);
}

TEST(Backoff, JitterOnlyShrinksAndStaysWithinTheConfiguredFraction) {
  BackoffConfig cfg;
  cfg.initial_seconds = 0.1;
  cfg.multiplier = 1.0;
  cfg.max_seconds = 0.1;
  cfg.jitter = 0.5;
  cfg.max_attempts = 200;
  ExponentialBackoff backoff(cfg, 99);
  for (int i = 0; i < 200; ++i) {
    const double d = backoff.next_delay();
    EXPECT_GT(d, 0.05 - 1e-12);  // at most half jittered away
    EXPECT_LE(d, 0.1);
  }
}

TEST(Backoff, SameSeedSameSchedule) {
  BackoffConfig cfg;
  cfg.max_attempts = 50;
  ExponentialBackoff a(cfg, 7), b(cfg, 7);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.next_delay(), b.next_delay());
}

TEST(UnixSocket, BindConnectRoundtrip) {
  const std::string path = "/tmp/ranknet_test_util_rt.sock";
  auto listener = UnixListener::bind(path);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();

  std::thread peer([&path] {
    auto client = UnixStream::connect(path, 1.0);
    ASSERT_TRUE(client.ok()) << client.status().to_string();
    const char msg[] = "ping";
    ASSERT_TRUE(client.value().send_all(msg, 4, 1.0).ok());
    char reply[4] = {};
    ASSERT_TRUE(client.value().recv_all(reply, 4, 1.0).ok());
    EXPECT_EQ(std::string(reply, 4), "pong");
  });

  auto accepted = listener.value().accept(1.0);
  ASSERT_TRUE(accepted.ok()) << accepted.status().to_string();
  char buf[4] = {};
  ASSERT_TRUE(accepted.value().recv_all(buf, 4, 1.0).ok());
  EXPECT_EQ(std::string(buf, 4), "ping");
  ASSERT_TRUE(accepted.value().send_all("pong", 4, 1.0).ok());
  peer.join();
}

TEST(UnixSocket, ConnectToNobodyIsUnavailableNotException) {
  auto r = UnixStream::connect("/tmp/ranknet_no_such_server.sock", 0.05);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(UnixSocket, RecvTimeoutIsUnavailable) {
  const std::string path = "/tmp/ranknet_test_util_to.sock";
  auto listener = UnixListener::bind(path);
  ASSERT_TRUE(listener.ok());
  auto client = UnixStream::connect(path, 1.0);
  ASSERT_TRUE(client.ok());
  auto accepted = listener.value().accept(1.0);
  ASSERT_TRUE(accepted.ok());
  char buf[8];
  const auto st = client.value().recv_all(buf, sizeof(buf), 0.05);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);  // silence, not corruption
}

TEST(UnixSocket, PeerClosingMidMessageIsCorruptData) {
  const std::string path = "/tmp/ranknet_test_util_cut.sock";
  auto listener = UnixListener::bind(path);
  ASSERT_TRUE(listener.ok());
  auto client = UnixStream::connect(path, 1.0);
  ASSERT_TRUE(client.ok());
  auto accepted = listener.value().accept(1.0);
  ASSERT_TRUE(accepted.ok());
  // Peer delivers 3 of the 10 promised bytes, then hangs up: a truncated
  // message must be kCorruptData, distinct from a clean timeout.
  ASSERT_TRUE(accepted.value().send_all("abc", 3, 1.0).ok());
  accepted.value().close();
  char buf[10];
  const auto st = client.value().recv_all(buf, sizeof(buf), 1.0);
  EXPECT_EQ(st.code(), StatusCode::kCorruptData);
}

TEST(Backoff, ResetRestartsTheSchedule) {
  BackoffConfig cfg;
  cfg.jitter = 0.0;
  ExponentialBackoff backoff(cfg, 1);
  const double first = backoff.next_delay();
  backoff.next_delay();
  backoff.reset();
  EXPECT_DOUBLE_EQ(backoff.next_delay(), first);
  EXPECT_EQ(backoff.attempt(), 1);
}

}  // namespace

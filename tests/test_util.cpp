#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ranknet::util;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(9);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(st.mean(), 2.0, 0.1);
  EXPECT_NEAR(st.stddev(), 3.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(10);
  for (double lambda : {0.5, 3.0, 12.0}) {
    RunningStats st;
    for (int i = 0; i < 5000; ++i) st.add(rng.poisson(lambda));
    EXPECT_NEAR(st.mean(), lambda, 0.15 * lambda + 0.05);
  }
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.truncated_normal(10.0, 5.0, 8.0, 12.0);
    EXPECT_GE(x, 8.0);
    EXPECT_LE(x, 12.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, QuantileIsMonotoneInQ) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.normal());
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(Stats, EmptyInputsGiveNan) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(mean(empty)));
  EXPECT_TRUE(std::isnan(quantile(empty, 0.5)));
}

TEST(Stats, HistogramCountsInRangeSamples) {
  const std::vector<double> xs{0.1, 0.2, 0.55, 0.9};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_NEAR(h.frequency(0), 0.5, 1e-12);
}

// Regression: out-of-range samples used to be clamped into the edge bins,
// inflating edge-bin frequencies; they must be tallied separately instead.
TEST(Stats, HistogramOutOfRangeSamplesAreNotClamped) {
  const std::vector<double> xs{-1.0, -0.5, 0.1, 0.2, 0.55, 0.9,
                               1.0,  2.0,  std::nan("")};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 2u);     // only 0.1, 0.2 — no clamped -1/-0.5
  EXPECT_EQ(h.counts[1], 2u);     // only 0.55, 0.9 — hi is exclusive
  EXPECT_EQ(h.underflow, 2u);     // -1.0, -0.5
  EXPECT_EQ(h.overflow, 3u);      // 1.0, 2.0, NaN
  EXPECT_EQ(h.total(), 4u);       // in-range mass only
  EXPECT_NEAR(h.frequency(0), 0.5, 1e-12);
  EXPECT_NEAR(h.frequency(1), 0.5, 1e-12);
}

TEST(Stats, EcdfStepFunction) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto e = ecdf(xs);
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_NEAR(e(1.0), 1.0 / 3, 1e-12);
  EXPECT_NEAR(e(2.5), 2.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(e(3.0), 1.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(6);
  std::vector<double> xs;
  RunningStats st;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.uniform(-3, 5));
    st.add(xs.back());
  }
  EXPECT_NEAR(st.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(st.min(), ranknet::util::min(xs), 1e-12);
  EXPECT_NEAR(st.max(), ranknet::util::max(xs), 1e-12);
}

// Regression: RunningStats::variance() used to report 0.0 for n < 2, so a
// single-sample latency series read as "zero spread measured" while the
// batch util::variance() reported NaN. Both must use the NaN sentinel.
TEST(Stats, DegenerateVarianceIsNanForBothAccumulators) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(variance(empty)));

  RunningStats none;
  EXPECT_TRUE(std::isnan(none.variance()));
  EXPECT_TRUE(std::isnan(none.stddev()));

  RunningStats one;
  one.add(3.5);
  EXPECT_TRUE(std::isnan(one.variance()));

  RunningStats two;
  two.add(1.0);
  two.add(3.0);
  EXPECT_DOUBLE_EQ(two.variance(), 2.0);  // n >= 2 unaffected
}

TEST(StringUtil, SplitTrimLower) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(trim(parts[1]), "b");
  EXPECT_EQ(lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("ranknet", "rank"));
  EXPECT_FALSE(starts_with("rank", "ranknet"));
}

TEST(StringUtil, FormatAndJoin) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
}

TEST(Csv, RoundTrip) {
  CsvTable t({"A", "B"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  const auto parsed = CsvTable::parse(t.to_string());
  EXPECT_EQ(parsed.num_rows(), 2u);
  EXPECT_EQ(parsed.cell(1, "B"), "y");
  EXPECT_EQ(parsed.cell_long(0, "A"), 1);
}

TEST(Csv, ErrorsOnBadShapeAndMissingColumn) {
  CsvTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_THROW(t.col("C"), std::out_of_range);
}

TEST(Status, CarriesCodeAndMessage) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);

  const Status s = Status::corrupt_data("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_NE(s.to_string().find("bad bytes"), std::string::npos);
  EXPECT_NE(s.to_string().find("CORRUPT_DATA"), std::string::npos);
}

TEST(Status, ResultHoldsValueOrStatus) {
  Result<int> good(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(good.value_or(9), 5);

  Result<int> bad(Status::not_found("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Status, StrictDoubleParserRejectsGarbage) {
  EXPECT_DOUBLE_EQ(parse_finite_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_finite_double("-1e3").value(), -1000.0);
  for (const char* bad :
       {"", "  ", "abc", "1.5x", "nan", "NaN", "inf", "-inf", "1e999"}) {
    EXPECT_FALSE(parse_finite_double(bad).ok()) << "'" << bad << "'";
  }
}

TEST(Status, StrictLongParserRejectsGarbage) {
  EXPECT_EQ(parse_long("42").value(), 42);
  EXPECT_EQ(parse_long("-7").value(), -7);
  for (const char* bad : {"", "4.5", "9x", "99999999999999999999"}) {
    EXPECT_FALSE(parse_long(bad).ok()) << "'" << bad << "'";
  }
}

TEST(Csv, TryParseRejectsMalformedInput) {
  // Truncated row (2 cells under a 3-column header).
  auto truncated = CsvTable::try_parse("A,B,C\n1,2\n");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruptData);

  // Over-long row.
  EXPECT_FALSE(CsvTable::try_parse("A,B\n1,2,3\n").ok());

  // Well-formed text parses.
  auto good = CsvTable::try_parse("A,B\n1,2\n3,4\n");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().num_rows(), 2u);
}

TEST(Csv, TryCellRejectsNonFiniteAndNonNumeric) {
  CsvTable t({"A"});
  for (const char* cell : {"nan", "inf", "1.5x", ""}) {
    t = CsvTable({"A"});
    t.add_row({cell});
    EXPECT_FALSE(t.try_cell_double(0, "A").ok()) << "'" << cell << "'";
  }
  t = CsvTable({"A"});
  t.add_row({"2.5"});
  EXPECT_TRUE(t.try_cell_double(0, "A").ok());
  EXPECT_FALSE(t.try_cell_long(0, "A").ok());  // 2.5 is not an integer
  // The throwing accessors keep their legacy exception type.
  EXPECT_THROW((void)t.cell_long(0, "A"), std::runtime_error);
}

TEST(Csv, TryLoadMissingFileIsStatusNotException) {
  auto r = CsvTable::try_load("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().to_string().empty());
}

TEST(ThreadPool, ThrowingTaskPropagatesThroughFutureWithoutDeadlock) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task"); });
  EXPECT_THROW(bad.get(), std::runtime_error);

  // The worker survives the exception: the pool still runs new tasks and
  // its destructor joins cleanly (this test returning proves no deadlock).
  auto good = pool.submit([] { return 17; });
  EXPECT_EQ(good.get(), 17);
  EXPECT_EQ(pool.escaped_exceptions(), 0u);  // captured, not escaped
}

TEST(ThreadPool, ManyThrowingTasksDoNotWedgeTheQueue) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([] { throw 42; }));
  }
  for (auto& f : futures) EXPECT_THROW(f.get(), int);
  auto alive = pool.submit([] { return true; });
  EXPECT_TRUE(alive.get());
}

}  // namespace

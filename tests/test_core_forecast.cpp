// Tests of the forecasting interface, metrics, baselines and the
// evaluation drivers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/evaluation.hpp"
#include "core/forecaster.hpp"
#include "core/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/svr.hpp"
#include "simulator/season.hpp"

namespace {

using namespace ranknet;
using core::RaceSamples;
using tensor::Matrix;

TEST(Metrics, MaeBasics) {
  const std::vector<double> pred{1, 2, 3};
  const std::vector<double> actual{2, 2, 5};
  EXPECT_DOUBLE_EQ(core::mae(pred, actual), 1.0);
  EXPECT_THROW(core::mae(pred, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Metrics, RhoRiskPerfectForecastIsZero) {
  const std::vector<double> z{3, 5, 7};
  EXPECT_DOUBLE_EQ(core::rho_risk(z, z, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(core::rho_risk(z, z, 0.9), 0.0);
}

TEST(Metrics, RhoRiskIsNonNegativeAndAsymmetric) {
  const std::vector<double> actual{10, 10, 10, 10};
  const std::vector<double> over{12, 12, 12, 12};
  const std::vector<double> under{8, 8, 8, 8};
  // Any miss has positive risk.
  EXPECT_GT(core::rho_risk(over, actual, 0.9), 0.0);
  EXPECT_GT(core::rho_risk(under, actual, 0.9), 0.0);
  // At rho=0.9, over-prediction is cheap, under-prediction expensive.
  EXPECT_LT(core::rho_risk(over, actual, 0.9),
            core::rho_risk(under, actual, 0.9));
  // 50-risk of a point forecast equals MAE normalized by sum |Z|.
  EXPECT_NEAR(core::rho_risk(over, actual, 0.5),
              core::mae(over, actual) * 4.0 / 40.0, 1e-12);
}

TEST(Metrics, SignAccuracy) {
  const std::vector<double> pred{1, -2, 0, 3};
  const std::vector<double> actual{4, -1, 0, -2};
  EXPECT_DOUBLE_EQ(core::sign_accuracy(pred, actual), 0.75);
}

TEST(Forecaster, SortToRanksIsJointPerSample) {
  RaceSamples raw;
  // Two samples, one lap horizon, three cars with crossing values.
  Matrix a(2, 1), b(2, 1), c(2, 1);
  a(0, 0) = 1.2; a(1, 0) = 9.0;
  b(0, 0) = 4.0; b(1, 0) = 2.0;
  c(0, 0) = 8.0; c(1, 0) = 5.0;
  raw.emplace(10, a);
  raw.emplace(20, b);
  raw.emplace(30, c);
  const auto ranks = core::sort_to_ranks(raw);
  EXPECT_DOUBLE_EQ(ranks.at(10)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ranks.at(20)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ranks.at(30)(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(ranks.at(10)(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(ranks.at(20)(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(ranks.at(30)(1, 0), 2.0);
}

TEST(Forecaster, MedianTrajectoryAndQuantiles) {
  Matrix samples(3, 2);
  samples(0, 0) = 1; samples(0, 1) = 4;
  samples(1, 0) = 2; samples(1, 1) = 6;
  samples(2, 0) = 3; samples(2, 1) = 8;
  const auto med = core::median_trajectory(samples);
  EXPECT_DOUBLE_EQ(med[0], 2.0);
  EXPECT_DOUBLE_EQ(med[1], 6.0);
  EXPECT_DOUBLE_EQ(core::sample_quantile(samples, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(core::sample_quantile(samples, 1, 1.0), 8.0);
}

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
  }
  static void TearDownTestSuite() {
    delete race_;
    race_ = nullptr;
  }
  static telemetry::RaceLog* race_;
};
telemetry::RaceLog* BaselineTest::race_ = nullptr;

TEST_F(BaselineTest, CurRankPredictsPersistence) {
  core::CurRankForecaster f;
  util::Rng rng(1);
  const auto samples = f.forecast(*race_, 50, 3, 10, rng);
  ASSERT_FALSE(samples.empty());
  for (const auto& [car_id, m] : samples) {
    EXPECT_EQ(m.rows(), 1u);  // deterministic
    const double current = race_->car(car_id).rank[49];
    for (std::size_t h = 0; h < m.cols(); ++h) {
      EXPECT_DOUBLE_EQ(m(0, h), current);
    }
  }
}

TEST_F(BaselineTest, ArimaProducesFiniteSpreadSamples) {
  core::ArimaForecaster f;
  util::Rng rng(2);
  const auto samples = f.forecast(*race_, 60, 2, 30, rng);
  ASSERT_FALSE(samples.empty());
  for (const auto& [car_id, m] : samples) {
    EXPECT_EQ(m.rows(), 30u);
    for (double v : m.flat()) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 45.0);
    }
  }
}

TEST_F(BaselineTest, MlDatasetAndForecaster) {
  core::MlFeatureConfig fcfg;
  const auto ds =
      core::build_ml_dataset({*race_}, 2, fcfg, /*max_rows=*/2000);
  ASSERT_GT(ds.y.size(), 500u);
  EXPECT_LE(ds.y.size(), 2000u);
  EXPECT_EQ(ds.x.cols(), fcfg.dim());
  // Train a tiny forest and wrap it.
  auto forest = std::make_shared<ml::RandomForest>(ml::ForestConfig{
      .num_trees = 10});
  forest->fit(ds.x, ds.y);
  core::MlRegressorForecaster f("RandomForest", forest, fcfg, 2);
  util::Rng rng(3);
  const auto samples = f.forecast(*race_, 70, 2, 1, rng);
  ASSERT_FALSE(samples.empty());
  for (const auto& [car_id, m] : samples) {
    for (double v : m.flat()) {
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 45.0);
    }
  }
}

TEST_F(BaselineTest, TaskAEvaluationCountsAndOrdering) {
  core::CurRankForecaster currank;
  core::TaskAConfig cfg;
  cfg.origin_stride = 8;
  cfg.num_samples = 1;
  const auto r = core::evaluate_task_a(currank, *race_, cfg);
  EXPECT_GT(r.all.count, 100u);
  EXPECT_EQ(r.all.count, r.normal.count + r.pit_covered.count);
  // Persistence is very accurate on normal laps, poor around pit stops.
  EXPECT_LT(r.normal.mae, 1.0);
  EXPECT_GT(r.pit_covered.mae, r.normal.mae + 0.5);
  // 50-risk and 90-risk coincide for a deterministic forecaster.
  EXPECT_NEAR(r.all.risk50, r.all.risk90, 1e-12);
}

TEST_F(BaselineTest, TaskAMultiRaceAggregation) {
  core::CurRankForecaster currank;
  core::TaskAConfig cfg;
  cfg.origin_stride = 16;
  cfg.num_samples = 1;
  const auto one = core::evaluate_task_a(currank, *race_, cfg);
  const auto two = core::evaluate_task_a(
      currank, std::vector<telemetry::RaceLog>{*race_, *race_}, cfg);
  EXPECT_EQ(two.all.count, 2 * one.all.count);
  EXPECT_NEAR(two.all.mae, one.all.mae, 1e-9);
}

TEST_F(BaselineTest, TaskBZeroChangeBaseline) {
  core::ZeroChangeStintPredictor zero;
  core::TaskBConfig cfg;
  const auto r = core::evaluate_task_b(zero, {*race_}, cfg);
  ASSERT_GT(r.count, 20u);
  // Rank changes between stints are substantial, so zero-change MAE is
  // large and its sign accuracy is the frequency of exact zero changes.
  EXPECT_GT(r.mae, 1.5);
  EXPECT_LT(r.sign_acc, 0.5);
}

TEST_F(BaselineTest, TaskBRegressorBeatsZeroChange) {
  const auto train = sim::build_event_dataset("Indy500").train;
  const auto ds = core::RegressorStintPredictor::build_dataset(train, 5);
  ASSERT_GT(ds.y.size(), 300u);
  auto svr = std::make_shared<ml::Svr>();
  svr->fit(ds.x, ds.y);
  core::RegressorStintPredictor pred("SVM", svr);
  core::ZeroChangeStintPredictor zero;
  core::TaskBConfig cfg;
  const auto r_svr = core::evaluate_task_b(pred, {*race_}, cfg);
  const auto r_zero = core::evaluate_task_b(zero, {*race_}, cfg);
  EXPECT_GT(r_svr.sign_acc, r_zero.sign_acc);
}

TEST(StintFeatures, ExtractsSensibleValues) {
  const auto race =
      sim::simulate_race({"Indy500", 2017, 200, sim::Usage::kTrain});
  for (int car_id : race.car_ids()) {
    const auto& car = race.car(car_id);
    const auto pits = car.pit_laps();
    if (pits.size() < 2) continue;
    std::vector<double> x(core::RegressorStintPredictor::kFeatureDim);
    const int p1 = static_cast<int>(pits[0]) + 1;
    const int p2 = static_cast<int>(pits[1]) + 1;
    ASSERT_TRUE(core::RegressorStintPredictor::features_at(race, car_id, p1,
                                                           p2, x));
    EXPECT_GE(x[0], 1.0);   // rank
    EXPECT_GE(x[4], 1.0);   // pits so far includes this one
    EXPECT_GT(x[5], 0.0);   // stint length
    break;
  }
}

}  // namespace

#include <gtest/gtest.h>

#include <set>

#include "simulator/race_sim.hpp"
#include "simulator/season.hpp"
#include "telemetry/analysis.hpp"
#include "util/stats.hpp"

namespace {

using namespace ranknet;
using sim::RaceParams;
using sim::RaceSimulator;

telemetry::RaceLog simulate_indy(std::uint64_t seed) {
  RaceParams params;
  params.track = sim::indy500_track();
  params.year = 2018;
  params.seed = seed;
  return RaceSimulator(params).run();
}

TEST(Simulator, DeterministicForSameSeed) {
  const auto a = simulate_indy(11);
  const auto b = simulate_indy(11);
  ASSERT_EQ(a.num_records(), b.num_records());
  for (std::size_t i = 0; i < a.num_records(); ++i) {
    EXPECT_EQ(a.records()[i].car_id, b.records()[i].car_id);
    EXPECT_EQ(a.records()[i].rank, b.records()[i].rank);
    EXPECT_DOUBLE_EQ(a.records()[i].lap_time, b.records()[i].lap_time);
  }
}

TEST(Simulator, DifferentSeedsProduceDifferentRaces) {
  const auto a = simulate_indy(1);
  const auto b = simulate_indy(2);
  EXPECT_NE(a.winner(), -1);
  bool differs = a.num_records() != b.num_records();
  if (!differs) {
    for (std::size_t i = 0; i < a.num_records(); ++i) {
      if (a.records()[i].rank != b.records()[i].rank) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

// Structural invariants that must hold for any seed.
class SimulatorInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorInvariants, RanksArePermutationPerLap) {
  const auto race = simulate_indy(GetParam());
  std::map<int, std::vector<int>> ranks_per_lap;
  for (const auto& rec : race.records()) {
    ranks_per_lap[rec.lap].push_back(rec.rank);
  }
  for (auto& [lap, ranks] : ranks_per_lap) {
    std::sort(ranks.begin(), ranks.end());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[i], static_cast<int>(i) + 1) << "lap " << lap;
    }
  }
}

TEST_P(SimulatorInvariants, TimeBehindLeaderConsistentWithRank) {
  const auto race = simulate_indy(GetParam());
  std::map<int, std::vector<const telemetry::LapRecord*>> by_lap;
  for (const auto& rec : race.records()) {
    EXPECT_GE(rec.time_behind_leader, 0.0);
    EXPECT_GT(rec.lap_time, 0.0);
    by_lap[rec.lap].push_back(&rec);
  }
  for (auto& [lap, recs] : by_lap) {
    std::sort(recs.begin(), recs.end(),
              [](const auto* a, const auto* b) { return a->rank < b->rank; });
    for (std::size_t i = 1; i < recs.size(); ++i) {
      EXPECT_GE(recs[i]->time_behind_leader,
                recs[i - 1]->time_behind_leader - 1e-9)
          << "lap " << lap;
    }
    EXPECT_NEAR(recs[0]->time_behind_leader, 0.0, 1e-9);
  }
}

TEST_P(SimulatorInvariants, StintsRespectResourceWindow) {
  const auto race = simulate_indy(GetParam());
  const auto pits = telemetry::extract_pit_stops(race);
  const double cap = 1.5 * sim::indy500_track().fuel_window_laps + 1;
  for (const auto& p : pits) {
    EXPECT_LE(p.stint_distance, cap);
    EXPECT_GE(p.stint_distance, 0);
  }
  // Every car that finishes must have pitted several times in 200 laps.
  for (int car_id : race.car_ids()) {
    const auto& car = race.car(car_id);
    if (car.laps() == 200u) {
      EXPECT_GE(car.pit_laps().size(), 4u) << "car " << car_id;
    }
  }
}

TEST_P(SimulatorInvariants, PitLapsAreSparse) {
  const auto race = simulate_indy(GetParam());
  const double ratio = telemetry::pit_laps_ratio(race);
  EXPECT_GT(ratio, 0.01);
  EXPECT_LT(ratio, 0.05);  // paper: pit laps are <5% of records
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorInvariants,
                         ::testing::Values(1, 7, 42, 1234, 98765));

TEST(Simulator, CautionLapsAreSlowerAndBunched) {
  const auto race = simulate_indy(3);
  std::vector<double> green_times, yellow_times;
  std::vector<double> green_spread, yellow_spread;
  std::map<int, std::pair<double, bool>> lap_max_tbl;
  for (const auto& rec : race.records()) {
    if (rec.lap_status == telemetry::LapStatus::kPit) continue;
    (rec.track_status == telemetry::TrackStatus::kYellow ? yellow_times
                                                         : green_times)
        .push_back(rec.lap_time);
    auto& [mx, yellow] = lap_max_tbl[rec.lap];
    mx = std::max(mx, rec.time_behind_leader);
    yellow = rec.track_status == telemetry::TrackStatus::kYellow;
  }
  ASSERT_FALSE(yellow_times.empty());
  EXPECT_GT(util::mean(yellow_times), 1.3 * util::mean(green_times));
  // After a few caution laps the field is far more compressed than the
  // typical green-flag spread.
  for (const auto& [lap, v] : lap_max_tbl) {
    (v.second ? yellow_spread : green_spread).push_back(v.first);
  }
  EXPECT_LT(util::quantile(yellow_spread, 0.3),
            util::quantile(green_spread, 0.5));
}

TEST(Simulator, NormalPitsCostMoreRankThanCautionPits) {
  // Aggregate across several races for stable statistics.
  std::vector<double> normal_changes, caution_changes;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto race = simulate_indy(seed);
    for (const auto& p : telemetry::extract_pit_stops(race)) {
      (p.caution ? caution_changes : normal_changes)
          .push_back(p.rank_change);
    }
  }
  ASSERT_GT(normal_changes.size(), 50u);
  ASSERT_GT(caution_changes.size(), 50u);
  EXPECT_GT(util::mean(normal_changes), util::mean(caution_changes) + 1.0);
}

TEST(Season, Table2InventoryMatchesPaper) {
  const auto specs = sim::table2_specs();
  EXPECT_EQ(specs.size(), 25u);  // 25 races from four events
  std::map<std::string, int> per_event;
  int train = 0, val = 0, test = 0;
  for (const auto& s : specs) {
    ++per_event[s.event];
    switch (s.usage) {
      case sim::Usage::kTrain: ++train; break;
      case sim::Usage::kValidation: ++val; break;
      case sim::Usage::kTest: ++test; break;
    }
  }
  EXPECT_EQ(per_event["Indy500"], 7);
  EXPECT_EQ(per_event["Iowa"], 6);
  EXPECT_EQ(per_event["Pocono"], 5);
  EXPECT_EQ(per_event["Texas"], 7);
  EXPECT_EQ(val, 1);   // Indy500-2018 only
  EXPECT_EQ(test, 5);  // Indy500-2019, Iowa-2019, Pocono-2018, Texas-2018/19
  EXPECT_EQ(train, 19);
}

TEST(Season, EventDatasetSplit) {
  const auto ds = sim::build_event_dataset("Indy500");
  EXPECT_EQ(ds.train.size(), 5u);
  EXPECT_EQ(ds.validation.size(), 1u);
  EXPECT_EQ(ds.test.size(), 1u);
  EXPECT_EQ(ds.validation[0].info().year, 2018);
  EXPECT_EQ(ds.test[0].info().year, 2019);
  EXPECT_GT(ds.total_records(), 30000u);
  EXPECT_THROW(sim::build_event_dataset("Daytona"), std::invalid_argument);
}

TEST(Season, IowaUses300LapsIn2019) {
  const auto ds = sim::build_event_dataset("Iowa");
  ASSERT_EQ(ds.test.size(), 1u);
  EXPECT_EQ(ds.test[0].num_laps(), 300);
  for (const auto& r : ds.train) EXPECT_EQ(r.num_laps(), 250);
}

TEST(Season, FieldSizesWithinTrackRange) {
  for (const auto& ds : {sim::build_event_dataset("Texas"),
                         sim::build_event_dataset("Pocono")}) {
    const auto track = sim::track_by_name(ds.event);
    for (const auto* group : {&ds.train, &ds.test}) {
      for (const auto& race : *group) {
        const int n = static_cast<int>(race.car_ids().size());
        EXPECT_GE(n, track.min_cars);
        EXPECT_LE(n, track.max_cars);
      }
    }
  }
}

TEST(Track, PresetsAndLookup) {
  EXPECT_EQ(sim::all_tracks().size(), 4u);
  EXPECT_NEAR(sim::indy500_track().base_lap_seconds(),
              2.5 / 175.0 * 3600.0, 1e-9);
  EXPECT_THROW(sim::track_by_name("Monza"), std::invalid_argument);
}

TEST(Simulator, MakeFieldDistinctIdsAndSkillSpread) {
  util::Rng rng(5);
  const auto field = sim::make_field(sim::indy500_track(), 33, rng);
  std::set<int> ids;
  for (const auto& d : field) ids.insert(d.car_id);
  EXPECT_EQ(ids.size(), 33u);
  std::vector<double> skills;
  for (const auto& d : field) skills.push_back(d.skill_offset);
  EXPECT_GT(util::max(skills) - util::min(skills), 1.0);
}

}  // namespace

// Tests of the sequence models (LSTM + Transformer) and the PitModel at the
// model level: learning synthetic patterns, trace/step consistency,
// sampling behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ar_model.hpp"
#include "core/pit_model.hpp"
#include "core/status_forecast.hpp"
#include "core/transformer_model.hpp"
#include "nn/adam.hpp"
#include "simulator/season.hpp"
#include "util/stats.hpp"

namespace {

using namespace ranknet;
using core::LstmSeqModel;
using core::PitFeatures;
using core::PitModel;
using core::SeqModelConfig;
using features::SeqExample;

/// Synthetic windows: the target alternates slowly unless the single
/// covariate fires, which forces a +5 jump — a toy version of the pit
/// effect RankNet must learn.
std::vector<SeqExample> toy_windows(std::size_t count, std::size_t window,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<SeqExample> out;
  for (std::size_t i = 0; i < count; ++i) {
    SeqExample ex;
    ex.car_index = 0;
    double level = rng.uniform(5.0, 15.0);
    ex.target.resize(window);
    ex.covariates.assign(window, {0.0});
    for (std::size_t t = 0; t < window; ++t) {
      if (rng.bernoulli(0.15)) {
        ex.covariates[t][0] = 1.0;
        level += 5.0;
      }
      ex.target[t] = level + rng.normal(0.0, 0.1);
    }
    ex.weight = 1.0;
    out.push_back(std::move(ex));
  }
  return out;
}

SeqModelConfig toy_config() {
  SeqModelConfig cfg;
  cfg.cov_dim = 1;
  cfg.hidden = 16;
  cfg.num_layers = 2;
  cfg.embed_dim = 2;
  cfg.vocab = 2;
  return cfg;
}

features::StandardScaler toy_scaler() {
  return features::StandardScaler(12.0, 6.0);
}

TEST(LstmSeqModel, TrainingReducesLoss) {
  LstmSeqModel model(toy_config());
  model.set_scaler(toy_scaler());
  const auto windows = toy_windows(64, 12, 1);
  std::vector<const SeqExample*> ptrs;
  for (const auto& w : windows) ptrs.push_back(&w);
  const auto batch = model.make_batch(ptrs, 2);
  nn::Adam adam(model.params(), {.lr = 5e-3});
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 60; ++step) {
    const double loss = model.train_step(batch);
    adam.step();
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first - 0.5);
}

TEST(LstmSeqModel, LearnsCovariateDrivenJump) {
  LstmSeqModel model(toy_config());
  model.set_scaler(toy_scaler());
  const auto windows = toy_windows(128, 12, 2);
  std::vector<const SeqExample*> ptrs;
  for (const auto& w : windows) ptrs.push_back(&w);
  const auto batch = model.make_batch(ptrs, 2);
  nn::Adam adam(model.params(), {.lr = 5e-3});
  for (int step = 0; step < 150; ++step) {
    model.train_step(batch);
    adam.step();
  }
  // Forecast with the covariate firing at step 1 vs not firing: the
  // predicted level should jump by roughly +5 only in the first case.
  const std::vector<std::vector<double>> history{{10, 10, 10, 10, 10, 10}};
  const std::vector<std::vector<std::vector<double>>> hist_covs{
      {{0}, {0}, {0}, {0}, {0}, {0}}};
  util::Rng rng(3);
  auto trace = model.trace(history, hist_covs, {0});
  ASSERT_EQ(trace.size(), 5u);

  auto mean_forecast = [&](double cov_value) {
    double acc = 0.0;
    const int reps = 200;
    for (int i = 0; i < reps; ++i) {
      auto state = LstmSeqModel::replicate_state(trace.back(), 0, 1);
      const std::vector<std::vector<std::vector<double>>> fut{
          {{cov_value}}};
      const auto out = model.sample_forward(state, {{10.0}}, fut, {0}, 1,
                                            rng);
      acc += out(0, 0);
    }
    return acc / reps;
  };
  const double with_jump = mean_forecast(1.0);
  const double without = mean_forecast(0.0);
  EXPECT_NEAR(without, 10.0, 1.8);  // toy model trained a few steps only
  EXPECT_GT(with_jump, without + 2.5);
}

TEST(LstmSeqModel, TraceMatchesManualAdvance) {
  LstmSeqModel model(toy_config());
  model.set_scaler(toy_scaler());
  const std::vector<std::vector<double>> history{{10, 11, 12, 13}};
  const std::vector<std::vector<std::vector<double>>> covs{
      {{0}, {1}, {0}, {1}}};
  const auto trace = model.trace(history, covs, {0});
  ASSERT_EQ(trace.size(), 3u);
  // Replaying the last step from trace[1] must reproduce trace[2].
  auto state = LstmSeqModel::replicate_state(trace[1], 0, 1);
  model.advance(state, {{history[0][2]}}, {covs[0][3]}, {0});
  for (std::size_t l = 0; l < state.size(); ++l) {
    for (std::size_t i = 0; i < state[l].h.size(); ++i) {
      EXPECT_NEAR(state[l].h.flat()[i], trace[2][l].h.flat()[i], 1e-12);
      EXPECT_NEAR(state[l].c.flat()[i], trace[2][l].c.flat()[i], 1e-12);
    }
  }
}

TEST(LstmSeqModel, ReplicateAndConcatStates) {
  LstmSeqModel model(toy_config());
  model.set_scaler(toy_scaler());
  const std::vector<std::vector<double>> history{{10, 11, 12}};
  const std::vector<std::vector<std::vector<double>>> covs{{{0}, {1}, {0}}};
  const auto trace = model.trace(history, covs, {0});
  const auto rep = LstmSeqModel::replicate_state(trace.back(), 0, 3);
  EXPECT_EQ(rep[0].h.rows(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < rep[0].h.cols(); ++c) {
      EXPECT_DOUBLE_EQ(rep[0].h(r, c), trace.back()[0].h(0, c));
    }
  }
  const auto cat = LstmSeqModel::concat_states({rep, rep});
  EXPECT_EQ(cat[0].h.rows(), 6u);
}

TEST(LstmSeqModel, SampleForwardShapesAndSpread) {
  LstmSeqModel model(toy_config());
  model.set_scaler(toy_scaler());
  const std::vector<std::vector<double>> history{{10, 10, 10}};
  const std::vector<std::vector<std::vector<double>>> covs{{{0}, {0}, {0}}};
  const auto trace = model.trace(history, covs, {0});
  auto state = LstmSeqModel::replicate_state(trace.back(), 0, 64);
  std::vector<std::vector<double>> z(64, {10.0});
  std::vector<std::vector<std::vector<double>>> fut(
      64, {{0.0}, {0.0}, {0.0}, {0.0}});
  std::vector<int> idx(64, 0);
  util::Rng rng(4);
  const auto out = model.sample_forward(state, z, fut, idx, 4, rng);
  EXPECT_EQ(out.rows(), 64u);
  EXPECT_EQ(out.cols(), 4u);
  // Untrained model: samples must still be finite, in the clamp range, and
  // not all identical (Gaussian sampling).
  util::RunningStats st;
  for (double v : out.flat()) {
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 45.0);
    st.add(v);
  }
  EXPECT_GT(st.stddev(), 1e-3);
}

TEST(TransformerSeqModel, TrainingReducesLoss) {
  core::TransformerConfig cfg;
  cfg.cov_dim = 1;
  cfg.model_dim = 16;
  cfg.heads = 4;
  cfg.blocks = 1;
  cfg.ffn_dim = 32;
  cfg.embed_dim = 2;
  cfg.vocab = 2;
  core::TransformerSeqModel model(cfg);
  model.set_scaler(toy_scaler());
  const auto windows = toy_windows(64, 10, 5);
  std::vector<const SeqExample*> ptrs;
  for (const auto& w : windows) ptrs.push_back(&w);
  const auto batch = model.make_batch(ptrs, 2);
  nn::Adam adam(model.params(), {.lr = 3e-3});
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 80; ++step) {
    const double loss = model.train_step(batch);
    adam.step();
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first - 0.3);
}

TEST(TransformerSeqModel, SampleForecastShape) {
  core::TransformerConfig cfg;
  cfg.cov_dim = 1;
  cfg.model_dim = 16;
  cfg.heads = 4;
  cfg.blocks = 1;
  cfg.embed_dim = 0;
  core::TransformerSeqModel model(cfg);
  model.set_scaler(toy_scaler());
  util::Rng rng(6);
  const std::vector<std::vector<double>> history(3, {10, 11, 12, 11});
  const std::vector<std::vector<std::vector<double>>> covs(
      3, {{0}, {0}, {0}, {0}, {1}, {0}});
  const auto out = model.sample_forecast(history, covs, {0, 0, 0}, 2, rng);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 2u);
  for (double v : out.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(PitModel, LearnsStintLength) {
  // Synthetic races aren't needed: use the simulator's event data.
  const auto ds = sim::build_event_dataset("Indy500");
  PitModel model;
  const auto data = model.build_training_data(
      {ds.train.begin(), ds.train.begin() + 2});
  ASSERT_GT(data.y.size(), 500u);
  model.fit(data, 40);
  // Fresh stint: expected laps-to-pit should be near the planned stint
  // (~0.86 * 33-lap fuel window), far from zero.
  const auto fresh = model.predict({0.0, 0.0});
  EXPECT_GT(fresh.mean, 18.0);
  EXPECT_LT(fresh.mean, 35.0);
  // Late in the stint the remaining distance must be much smaller.
  const auto late = model.predict({0.0, 26.0});
  EXPECT_LT(late.mean, fresh.mean - 12.0);
  EXPECT_GT(late.stddev, 0.0);
}

TEST(PitModel, SampleFutureLapStatusRespectsHorizon) {
  const auto ds = sim::build_event_dataset("Indy500");
  PitModel model;
  const auto data = model.build_training_data(
      {ds.train.begin(), ds.train.begin() + 2});
  model.fit(data, 30);
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto status = model.sample_future_lap_status({0.0, 20.0}, 50, rng);
    EXPECT_EQ(status.size(), 50u);
    for (double s : status) EXPECT_TRUE(s == 0.0 || s == 1.0);
  }
  // Starting deep into a stint, a pit must usually appear within the
  // remaining fuel window.
  int with_pit = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto status = model.sample_future_lap_status({0.0, 25.0}, 20, rng);
    for (double s : status) {
      if (s > 0.5) {
        ++with_pit;
        break;
      }
    }
  }
  EXPECT_GT(with_pit, 30);
}

TEST(StatusForecast, CurrentPitFeatures) {
  features::StatusStreams s;
  s.track_status = {0, 1, 1, 0, 0};
  s.lap_status = {0, 0, 1, 0, 0};
  s.total_pit_count = {0, 0, 1, 0, 0};
  s.leader_pit_count = {0, 0, 0, 0, 0};
  const auto f = core::current_pit_features(s, 5);
  EXPECT_DOUBLE_EQ(f.pit_age, 2.0);       // laps 4, 5 since the stop
  EXPECT_DOUBLE_EQ(f.caution_laps, 0.0);  // no yellow since the stop
  const auto f3 = core::current_pit_features(s, 2);
  EXPECT_DOUBLE_EQ(f3.pit_age, 2.0);
  EXPECT_DOUBLE_EQ(f3.caution_laps, 1.0);
}

}  // namespace

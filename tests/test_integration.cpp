// End-to-end integration: simulate an event, train a small RankNet through
// the ModelZoo (cached under a temp dir), forecast a test race, and check
// the paper's headline qualitative claim — RankNet with oracle race status
// beats the persistence baseline around pit stops.
//
// Kept intentionally small (few epochs / windows) so the suite stays fast;
// the bench harness runs the full-size configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/evaluation.hpp"
#include "core/registry.hpp"

namespace {

using namespace ranknet;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new sim::EventDataset(sim::build_event_dataset("Indy500"));
    core::ZooConfig zc;
    zc.artifacts_dir =
        (std::filesystem::temp_directory_path() / "ranknet_it_cache")
            .string();
    zc.train.max_epochs = 8;
    zc.train.max_windows = 2500;
    zc.train.max_val_windows = 400;
    zoo_ = new core::ModelZoo(zc);
  }
  static void TearDownTestSuite() {
    delete zoo_;
    delete ds_;
  }
  static sim::EventDataset* ds_;
  static core::ModelZoo* zoo_;
};
sim::EventDataset* IntegrationTest::ds_ = nullptr;
core::ModelZoo* IntegrationTest::zoo_ = nullptr;

TEST_F(IntegrationTest, OracleBeatsCurRankOnPitCoveredLaps) {
  auto oracle = zoo_->ranknet_oracle(*ds_);
  core::CurRankForecaster currank;
  core::TaskAConfig cfg;
  cfg.num_samples = 24;
  cfg.origin_stride = 6;
  const auto r_oracle = core::evaluate_task_a(*oracle, ds_->test, cfg);
  const auto r_currank = core::evaluate_task_a(currank, ds_->test, cfg);
  ASSERT_GT(r_oracle.all.count, 200u);
  EXPECT_EQ(r_oracle.all.count, r_currank.all.count);
  // Headline claim: the win comes from the pit-covered laps.
  EXPECT_LT(r_oracle.pit_covered.mae, r_currank.pit_covered.mae);
  EXPECT_LT(r_oracle.all.mae, r_currank.all.mae + 0.15);
}

TEST_F(IntegrationTest, ModelCacheRoundTrip) {
  // Second construction must load from cache and produce identical
  // forecasts for the same seed.
  auto a = zoo_->ranknet_oracle(*ds_);
  auto b = zoo_->ranknet_oracle(*ds_);
  util::Rng rng_a(5), rng_b(5);
  const auto& race = ds_->test[0];
  const auto fa = a->forecast(race, 40, 2, 8, rng_a);
  const auto fb = b->forecast(race, 40, 2, 8, rng_b);
  ASSERT_EQ(fa.size(), fb.size());
  for (const auto& [car_id, m] : fa) {
    const auto& n = fb.at(car_id);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_DOUBLE_EQ(m.flat()[i], n.flat()[i]);
    }
  }
}

TEST_F(IntegrationTest, MlpVariantProducesCalibratedSamples) {
  auto mlp = zoo_->ranknet_mlp(*ds_);
  util::Rng rng(6);
  const auto& race = ds_->test[0];
  const auto raw = mlp->forecast(race, 60, 4, 16, rng);
  ASSERT_FALSE(raw.empty());
  const auto ranks = core::sort_to_ranks(raw);
  const auto cars = static_cast<double>(ranks.size());
  for (const auto& [car_id, m] : ranks) {
    EXPECT_EQ(m.rows(), 16u);
    EXPECT_EQ(m.cols(), 4u);
    for (double v : m.flat()) {
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, cars);
    }
  }
  // Joint sorting makes each (sample, lap) slice a permutation: the sum of
  // ranks across cars is n(n+1)/2.
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t h = 0; h < 4; ++h) {
      double total = 0.0;
      for (const auto& [_, m] : ranks) total += m(s, h);
      EXPECT_DOUBLE_EQ(total, cars * (cars + 1.0) / 2.0);
    }
  }
}

TEST_F(IntegrationTest, StintAdapterEvaluates) {
  auto oracle = zoo_->ranknet_oracle(*ds_);
  core::ForecasterStintAdapter adapter(*oracle, 8);
  core::TaskBConfig cfg;
  cfg.min_stint = 10;
  const auto r = core::evaluate_task_b(adapter, ds_->test, cfg);
  EXPECT_GT(r.count, 10u);
  EXPECT_TRUE(std::isfinite(r.mae));
  EXPECT_GE(r.sign_acc, 0.0);
  EXPECT_LE(r.sign_acc, 1.0);
}

}  // namespace

// Forecast-serving front end: wire protocol strictness, the
// ForecastServer's admission/batching/degradation behaviour, client retry,
// and zero-downtime hot-swap with automatic rollback — all over real AF_UNIX
// sockets against a live server. This binary is also the `serve` sanitizer
// gate (serve-tsan preset): every test tears its server down cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/baselines.hpp"
#include "core/forecast_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "serve/client.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "simulator/fault_injector.hpp"
#include "simulator/season.hpp"
#include "util/socket.hpp"

namespace {

using namespace ranknet;
namespace wire = serve::wire;

std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

serve::ModelFactory affine_factory(int partition_delay_us = 0) {
  return [partition_delay_us](const std::string& path)
             -> util::Result<std::shared_ptr<core::RaceForecaster>> {
    auto model = std::make_shared<serve::AffineRankModel>();
    if (auto st = model->load_artifact(path); !st.ok()) return st;
    model->set_partition_delay_us(partition_delay_us);
    return std::shared_ptr<core::RaceForecaster>(std::move(model));
  };
}

// One live server + registry + preloaded race per test.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest}));
    serve::AffineRankModel::save_artifact(kIdentityArtifact, 1.0, 0.0);
    serve::AffineRankModel::save_artifact(kScaledArtifact, 2.0, 3.0);
    serve::AffineRankModel::save_artifact(
        kNanArtifact, std::numeric_limits<double>::quiet_NaN(), 0.0);
  }
  static void TearDownTestSuite() {
    delete race_;
    race_ = nullptr;
  }

  void boot(serve::ServerConfig config, serve::RegistryConfig reg_cfg = {},
            int partition_delay_us = 0) {
    reg_cfg.gate.probe_origin_lap = 30;
    reg_cfg.gate.probe_horizon = 5;
    reg_cfg.gate.probe_num_samples = 4;
    registry_ = std::make_unique<serve::ModelRegistry>(
        affine_factory(partition_delay_us), reg_cfg);
    registry_->set_probe_race(*race_);
    registry_->set_forecast_cache(std::make_shared<core::ForecastCache>(256));
    ASSERT_TRUE(registry_->init(kIdentityArtifact).ok());
    server_ = std::make_unique<serve::ForecastServer>(*registry_, config);
    server_->add_race(*race_);
    ASSERT_TRUE(server_->start().ok());
    socket_path_ = config.socket_path;
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  serve::ClientConfig client_config() const {
    serve::ClientConfig cfg;
    cfg.socket_path = socket_path_;
    cfg.recv_timeout_seconds = 2.0;
    cfg.backoff.initial_seconds = 0.002;
    cfg.backoff.max_seconds = 0.02;
    return cfg;
  }

  static wire::ForecastRequest make_request(std::uint64_t id,
                                            std::uint64_t seed) {
    wire::ForecastRequest req;
    req.request_id = id;
    req.seed = seed;
    req.race_id = race_->id();
    req.origin_lap = 30;
    req.horizon = 5;
    req.num_samples = 4;
    return req;
  }

  static constexpr const char* kIdentityArtifact =
      "/tmp/ranknet_serve_identity.bin";
  static constexpr const char* kScaledArtifact =
      "/tmp/ranknet_serve_scaled.bin";
  static constexpr const char* kNanArtifact = "/tmp/ranknet_serve_nan.bin";

  static telemetry::RaceLog* race_;
  std::unique_ptr<serve::ModelRegistry> registry_;
  std::unique_ptr<serve::ForecastServer> server_;
  std::string socket_path_;
};

telemetry::RaceLog* ServeTest::race_ = nullptr;

bool cars_identical(const std::vector<wire::CarForecast>& a,
                    const std::vector<wire::CarForecast>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].car_id != b[i].car_id ||
        a[i].median.size() != b[i].median.size() ||
        std::memcmp(a[i].median.data(), b[i].median.data(),
                    a[i].median.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// --- wire protocol ---------------------------------------------------------

TEST(Wire, ForecastRequestRoundtrip) {
  wire::ForecastRequest req;
  req.request_id = 0x1122334455667788ull;
  req.seed = 42;
  req.race_id = "Indy500-2019";
  req.origin_lap = 30;
  req.horizon = 10;
  req.num_samples = 16;
  req.deadline_us = 5000;
  auto decoded = wire::decode_forecast_request(
      wire::encode_forecast_request(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().request_id, req.request_id);
  EXPECT_EQ(decoded.value().seed, req.seed);
  EXPECT_EQ(decoded.value().race_id, req.race_id);
  EXPECT_EQ(decoded.value().origin_lap, req.origin_lap);
  EXPECT_EQ(decoded.value().horizon, req.horizon);
  EXPECT_EQ(decoded.value().num_samples, req.num_samples);
  EXPECT_EQ(decoded.value().deadline_us, req.deadline_us);
}

TEST(Wire, ForecastResponseRoundtripPreservesBits) {
  wire::ForecastResponse res;
  res.request_id = 7;
  res.status_code = 0;
  res.tier = wire::Tier::kPartial;
  res.model_version = 3;
  res.cars.push_back({12, {1.0, 2.5, -0.0, 3.25}});
  res.cars.push_back({88, {17.0, std::nextafter(4.0, 5.0)}});
  res.message = "ok";
  auto decoded = wire::decode_forecast_response(
      wire::encode_forecast_response(res));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().tier, wire::Tier::kPartial);
  EXPECT_EQ(decoded.value().model_version, 3u);
  EXPECT_TRUE(cars_identical(decoded.value().cars, res.cars));
}

TEST(Wire, StrictDecodeRejectsTrailingAndTruncatedBytes) {
  auto bytes = wire::encode_forecast_request(wire::ForecastRequest{});
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(wire::decode_forecast_request(padded).ok());
  bytes.pop_back();
  EXPECT_FALSE(wire::decode_forecast_request(bytes).ok());
}

TEST(Wire, HeaderRejectsBadMagicVersionAndOversize) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  auto frame = wire::encode_frame(wire::FrameType::kForecastRequest, payload);
  auto header = wire::decode_header(frame);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().payload_len, 3u);
  EXPECT_TRUE(wire::verify_payload(header.value(),
                                   std::span(frame).subspan(wire::kHeaderSize))
                  .ok());

  auto bad_magic = frame;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(wire::decode_header(bad_magic).ok());
  auto bad_version = frame;
  bad_version[4] = 99;
  EXPECT_FALSE(wire::decode_header(bad_version).ok());
}

TEST(Wire, ChecksumCatchesEverySingleBitFlipInPayload) {
  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  auto frame = wire::encode_frame(wire::FrameType::kLoadRace, payload);
  const auto header = wire::decode_header(frame).value();
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    auto mangled = payload;
    mangled[byte] ^= 0x04;
    EXPECT_FALSE(wire::verify_payload(header, mangled).ok())
        << "bit flip at payload byte " << byte << " went undetected";
  }
}

TEST(Wire, RaceLogRoundtripAndCorruptRaceIsStatusNotThrow) {
  const auto race =
      sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest});
  auto decoded = wire::decode_race(wire::encode_race(race));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().id(), race.id());
  EXPECT_EQ(decoded.value().num_records(), race.num_records());
  EXPECT_EQ(decoded.value().num_laps(), race.num_laps());

  // A payload that parses but violates RaceLog's structural invariants
  // must come back as a Status, never an exception.
  auto bytes = wire::encode_race(race);
  EXPECT_FALSE(wire::decode_race(
                   std::span(bytes).first(bytes.size() / 2))
                   .ok());
}

TEST(Wire, SwapAckRoundtrip) {
  wire::SwapAck ack;
  ack.status_code = 8;
  ack.action = wire::SwapAction::kRolledBack;
  ack.active_version = 41;
  ack.message = "probation";
  auto decoded = wire::decode_swap_ack(wire::encode_swap_ack(ack));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().action, wire::SwapAction::kRolledBack);
  EXPECT_EQ(decoded.value().active_version, 41u);
  EXPECT_EQ(decoded.value().message, "probation");
}

// --- AffineRankModel -------------------------------------------------------

TEST(AffineRankModel, IdentityCoefficientsReproduceCurRank) {
  const auto race =
      sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest});
  serve::AffineRankModel affine(1.0, 0.0);
  core::CurRankForecaster cur;
  util::Rng rng_a(5), rng_b(5);
  const auto a = affine.forecast(race, 30, 5, 4, rng_a);
  const auto b = cur.forecast(race, 30, 5, 4, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [car, m] : a) {
    const auto& n = b.at(car);
    ASSERT_EQ(m.rows(), n.rows());
    ASSERT_EQ(m.cols(), n.cols());
    EXPECT_EQ(std::memcmp(m.flat().data(), n.flat().data(),
                          m.flat().size() * sizeof(double)),
              0);
  }
}

TEST(AffineRankModel, ArtifactRoundtripAndStagedCommitOnCorruption) {
  const std::string path = "/tmp/ranknet_affine_rt.bin";
  serve::AffineRankModel::save_artifact(path, 1.5, -2.0);
  serve::AffineRankModel model(1.0, 0.0);
  ASSERT_TRUE(model.load_artifact(path).ok());
  EXPECT_DOUBLE_EQ(model.scale(), 1.5);
  EXPECT_DOUBLE_EQ(model.offset(), -2.0);
  // Corrupt load leaves the previous coefficients untouched.
  EXPECT_FALSE(model.load_artifact("/tmp/ranknet_affine_missing.bin").ok());
  EXPECT_DOUBLE_EQ(model.scale(), 1.5);
  EXPECT_DOUBLE_EQ(model.offset(), -2.0);
}

// --- end-to-end serving ----------------------------------------------------

TEST_F(ServeTest, ForecastOverSocketThenByteIdenticalCacheHit) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_e2e.sock";
  boot(cfg);
  serve::ForecastClient client(client_config());

  auto first = client.forecast(make_request(1, 99));
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(first.value().ok()) << first.value().message;
  EXPECT_EQ(first.value().tier, wire::Tier::kFull);
  EXPECT_EQ(first.value().model_version, 1u);
  ASSERT_FALSE(first.value().cars.empty());
  for (const auto& car : first.value().cars) {
    ASSERT_EQ(car.median.size(), 5u);
    for (double v : car.median) EXPECT_TRUE(std::isfinite(v));
  }

  // Same seed + same race state => served from the forecast cache, and the
  // replay is byte-identical to the cold compute.
  auto replay = client.forecast(make_request(2, 99));
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().tier, wire::Tier::kCached);
  EXPECT_TRUE(cars_identical(replay.value().cars, first.value().cars));

  // A different seed is a different forecast.
  auto other = client.forecast(make_request(3, 100));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value().tier, wire::Tier::kFull);
}

TEST_F(ServeTest, LoadRaceOverWireAndUnknownRaceIsExplicitRejection) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_load.sock";
  boot(cfg);
  serve::ForecastClient client(client_config());

  auto req = make_request(1, 5);
  req.race_id = "Indy500-2021";  // not loaded yet
  auto missing = client.forecast(req);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().tier, wire::Tier::kRejected);
  EXPECT_EQ(missing.value().status_code,
            static_cast<std::uint8_t>(util::StatusCode::kNotFound));

  auto uploaded =
      sim::simulate_race({"Indy500", 2021, 60, sim::Usage::kTest});
  ASSERT_EQ(uploaded.id(), "Indy500-2021");
  ASSERT_TRUE(client.load_race(uploaded).ok());
  auto served = client.forecast(req);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served.value().ok()) << served.value().message;
  EXPECT_EQ(served.value().tier, wire::Tier::kFull);
}

TEST_F(ServeTest, PipelinedDuplicateRequestsGetIdenticalAnswers) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_batch.sock";
  boot(cfg);

  // Raw pipelining: 6 identical-seed + 2 distinct requests written
  // back-to-back before reading anything — the worker coalesces whatever
  // is queued, duplicates dedup through grouping and the cache.
  auto stream = util::UnixStream::connect(socket_path_, 1.0);
  ASSERT_TRUE(stream.ok());
  std::vector<std::uint8_t> out;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    const auto frame =
        wire::encode_frame(wire::FrameType::kForecastRequest,
                           wire::encode_forecast_request(make_request(id, 7)));
    out.insert(out.end(), frame.begin(), frame.end());
  }
  for (std::uint64_t id = 7; id <= 8; ++id) {
    // Distinct requests: id 8 asks for a different horizon, so it cannot
    // share a micro-batch group (and its answer is structurally different).
    auto req = make_request(id, 100 + id);
    if (id == 8) req.horizon = 3;
    const auto frame = wire::encode_frame(
        wire::FrameType::kForecastRequest, wire::encode_forecast_request(req));
    out.insert(out.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(stream.value().send_all(out.data(), out.size(), 2.0).ok());

  std::map<std::uint64_t, wire::ForecastResponse> responses;
  for (int i = 0; i < 8; ++i) {
    std::uint8_t header_bytes[wire::kHeaderSize];
    ASSERT_TRUE(stream.value()
                    .recv_all(header_bytes, sizeof(header_bytes), 5.0)
                    .ok());
    const auto header = wire::decode_header(header_bytes);
    ASSERT_TRUE(header.ok());
    std::vector<std::uint8_t> payload(header.value().payload_len);
    ASSERT_TRUE(
        stream.value().recv_all(payload.data(), payload.size(), 5.0).ok());
    ASSERT_TRUE(wire::verify_payload(header.value(), payload).ok());
    auto response = wire::decode_forecast_response(payload);
    ASSERT_TRUE(response.ok());
    responses[response.value().request_id] = std::move(response).value();
  }
  ASSERT_EQ(responses.size(), 8u);
  for (std::uint64_t id = 1; id <= 6; ++id) {
    ASSERT_TRUE(responses[id].ok()) << responses[id].message;
    EXPECT_TRUE(cars_identical(responses[id].cars, responses[1].cars))
        << "duplicate request " << id << " got a different answer";
  }
  EXPECT_FALSE(cars_identical(responses[7].cars, responses[8].cars));
}

TEST_F(ServeTest, OverloadShedsExplicitlyAndMonotonically) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_shed.sock";
  cfg.queue_capacity = 4;
  cfg.overload_watermark = 2;
  cfg.batch_max = 2;
  // A deliberately slow primary (2ms per partition task) so the queue
  // actually backs up behind the worker.
  boot(cfg, {}, /*partition_delay_us=*/2000);

  const auto shed_before = counter_value("serve.admission.shed_queue_full");
  const auto degraded_before = counter_value("serve.admission.degraded");

  auto stream = util::UnixStream::connect(socket_path_, 1.0);
  ASSERT_TRUE(stream.ok());
  constexpr int kBurst = 40;
  std::vector<std::uint8_t> out;
  for (std::uint64_t id = 1; id <= kBurst; ++id) {
    auto req = make_request(id, id);  // distinct seeds: no dedup relief
    req.deadline_us = 1500000;
    const auto frame = wire::encode_frame(
        wire::FrameType::kForecastRequest, wire::encode_forecast_request(req));
    out.insert(out.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(stream.value().send_all(out.data(), out.size(), 5.0).ok());

  int rejected = 0, served = 0, degraded_served = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::uint8_t header_bytes[wire::kHeaderSize];
    ASSERT_TRUE(stream.value()
                    .recv_all(header_bytes, sizeof(header_bytes), 10.0)
                    .ok())
        << "request " << i << " never answered — a hang, not a shed";
    const auto header = wire::decode_header(header_bytes);
    ASSERT_TRUE(header.ok());
    std::vector<std::uint8_t> payload(header.value().payload_len);
    ASSERT_TRUE(
        stream.value().recv_all(payload.data(), payload.size(), 10.0).ok());
    auto response = wire::decode_forecast_response(payload);
    ASSERT_TRUE(response.ok());
    if (response.value().tier == wire::Tier::kRejected) {
      ++rejected;
      EXPECT_NE(response.value().status_code, 0);
    } else {
      ++served;
      if (response.value().tier == wire::Tier::kFallback ||
          response.value().tier == wire::Tier::kCached) {
        ++degraded_served;
      }
    }
  }
  // Every request came back; overload was shed explicitly, not absorbed.
  EXPECT_EQ(rejected + served, kBurst);
  EXPECT_GT(rejected, 0) << "queue of 4 absorbed a burst of 40";
  EXPECT_GT(served, 0);
  EXPECT_GT(degraded_served, 0) << "watermark admission never degraded";
  EXPECT_GT(counter_value("serve.admission.shed_queue_full"), shed_before);
  EXPECT_GT(counter_value("serve.admission.degraded"), degraded_before);
}

TEST_F(ServeTest, DeadlineExpiredInQueueIsExplicitRejection) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_deadline.sock";
  boot(cfg, {}, /*partition_delay_us=*/5000);  // ~45ms per cold forecast

  auto stream = util::UnixStream::connect(socket_path_, 1.0);
  ASSERT_TRUE(stream.ok());
  // Request A: generous deadline, hogs the worker. Request B: 1ms deadline,
  // guaranteed to die in the queue behind A.
  auto a = make_request(1, 1);
  a.deadline_us = 1500000;
  auto b = make_request(2, 2);
  b.deadline_us = 1000;
  std::vector<std::uint8_t> out;
  for (const auto* req : {&a, &b}) {
    const auto frame =
        wire::encode_frame(wire::FrameType::kForecastRequest,
                           wire::encode_forecast_request(*req));
    out.insert(out.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(stream.value().send_all(out.data(), out.size(), 2.0).ok());

  bool saw_deadline_rejection = false;
  for (int i = 0; i < 2; ++i) {
    std::uint8_t header_bytes[wire::kHeaderSize];
    ASSERT_TRUE(stream.value()
                    .recv_all(header_bytes, sizeof(header_bytes), 10.0)
                    .ok());
    const auto header = wire::decode_header(header_bytes);
    ASSERT_TRUE(header.ok());
    std::vector<std::uint8_t> payload(header.value().payload_len);
    ASSERT_TRUE(
        stream.value().recv_all(payload.data(), payload.size(), 10.0).ok());
    auto response = wire::decode_forecast_response(payload);
    ASSERT_TRUE(response.ok());
    if (response.value().request_id == 2 &&
        response.value().tier == wire::Tier::kRejected &&
        response.value().status_code ==
            static_cast<std::uint8_t>(util::StatusCode::kDeadlineExceeded)) {
      saw_deadline_rejection = true;
    }
  }
  EXPECT_TRUE(saw_deadline_rejection);
}

TEST_F(ServeTest, CorruptFrameIsSkippedAndConnectionSurvives) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_corrupt.sock";
  boot(cfg);
  const auto skipped_before = counter_value("serve.frames.corrupt_skipped");

  auto stream = util::UnixStream::connect(socket_path_, 1.0);
  ASSERT_TRUE(stream.ok());
  auto corrupt =
      wire::encode_frame(wire::FrameType::kForecastRequest,
                         wire::encode_forecast_request(make_request(1, 1)));
  corrupt.back() ^= 0x01;  // payload no longer matches its checksum
  const auto valid =
      wire::encode_frame(wire::FrameType::kForecastRequest,
                         wire::encode_forecast_request(make_request(2, 2)));
  std::vector<std::uint8_t> out = corrupt;
  out.insert(out.end(), valid.begin(), valid.end());
  ASSERT_TRUE(stream.value().send_all(out.data(), out.size(), 2.0).ok());

  // The corrupt frame vanished (checksum), the valid one on the SAME
  // connection is answered.
  std::uint8_t header_bytes[wire::kHeaderSize];
  ASSERT_TRUE(
      stream.value().recv_all(header_bytes, sizeof(header_bytes), 5.0).ok());
  const auto header = wire::decode_header(header_bytes);
  ASSERT_TRUE(header.ok());
  std::vector<std::uint8_t> payload(header.value().payload_len);
  ASSERT_TRUE(
      stream.value().recv_all(payload.data(), payload.size(), 5.0).ok());
  auto response = wire::decode_forecast_response(payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().request_id, 2u);
  EXPECT_TRUE(response.value().ok());
  EXPECT_GT(counter_value("serve.frames.corrupt_skipped"), skipped_before);
}

TEST_F(ServeTest, BadMagicDropsConnectionButServerKeepsServing) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_magic.sock";
  boot(cfg);

  auto garbage_conn = util::UnixStream::connect(socket_path_, 1.0);
  ASSERT_TRUE(garbage_conn.ok());
  std::vector<std::uint8_t> garbage(64, 0xAB);
  ASSERT_TRUE(
      garbage_conn.value().send_all(garbage.data(), garbage.size(), 1.0).ok());
  // The server cuts this connection: reads now report closed/err, never data.
  char buf[16];
  const auto st = garbage_conn.value().recv_all(buf, sizeof(buf), 1.0);
  EXPECT_FALSE(st.ok());

  serve::ForecastClient client(client_config());
  auto ok = client.forecast(make_request(1, 3));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().ok());
}

TEST_F(ServeTest, StalledClientHoldingPartialFrameIsDropped) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_stall.sock";
  cfg.slow_client_timeout_seconds = 0.05;
  boot(cfg);
  const auto dropped_before = counter_value("serve.conn.slow_dropped");

  auto stalled = util::UnixStream::connect(socket_path_, 1.0);
  ASSERT_TRUE(stalled.ok());
  const auto frame =
      wire::encode_frame(wire::FrameType::kForecastRequest,
                         wire::encode_forecast_request(make_request(1, 4)));
  // Send half a frame and go quiet — the signature of a stalled client.
  ASSERT_TRUE(
      stalled.value().send_all(frame.data(), frame.size() / 2, 1.0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GT(counter_value("serve.conn.slow_dropped"), dropped_before);

  // A healthy client is untouched by the neighbor's demise.
  serve::ForecastClient client(client_config());
  auto ok = client.forecast(make_request(2, 4));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().ok());
}

TEST_F(ServeTest, ClientRetriesThroughDroppedAndCorruptedFrames) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_retry.sock";
  boot(cfg);

  auto client_cfg = client_config();
  client_cfg.recv_timeout_seconds = 0.1;  // fail fast on eaten frames
  client_cfg.backoff.max_attempts = 10;
  serve::ForecastClient client(client_cfg);

  sim::WireFaultProfile profile;
  profile.drop_rate = 0.4;
  profile.corrupt_rate = 0.2;
  auto injector = std::make_shared<sim::WireFaultInjector>(profile, 17);
  client.set_send_filter(
      [injector](std::span<const std::uint8_t> frame) {
        return injector->apply(frame);
      });

  // Every request eventually lands despite the hostile transport, and the
  // answers stay byte-identical to a clean client's (idempotent retries:
  // same seed => same bytes, via the cache).
  serve::ForecastClient clean(client_config());
  for (std::uint64_t id = 1; id <= 20; ++id) {
    auto noisy = client.forecast(make_request(id, 1000 + id));
    ASSERT_TRUE(noisy.ok()) << noisy.status().to_string();
    ASSERT_TRUE(noisy.value().ok());
    auto reference = clean.forecast(make_request(100 + id, 1000 + id));
    ASSERT_TRUE(reference.ok());
    EXPECT_TRUE(cars_identical(noisy.value().cars, reference.value().cars));
  }
  EXPECT_GT(client.retries(), 0u) << "fault profile never exercised retry";
  EXPECT_GT(injector->counters().dropped + injector->counters().corrupted, 0u);
}

TEST_F(ServeTest, HotSwapPromotesServesNewBitsAndRejectsCorruptCandidate) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_swap.sock";
  boot(cfg);
  serve::ForecastClient client(client_config());

  auto before = client.forecast(make_request(1, 11));
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().model_version, 1u);

  auto ack = client.swap_model(kScaledArtifact);
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  EXPECT_EQ(ack.value().action, wire::SwapAction::kPromoted);
  EXPECT_EQ(ack.value().active_version, 2u);

  auto after = client.forecast(make_request(2, 11));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().model_version, 2u);
  // scale 2 / offset 3: same seed, provably different model bits.
  ASSERT_EQ(after.value().cars.size(), before.value().cars.size());
  EXPECT_FALSE(cars_identical(after.value().cars, before.value().cars));

  // A corrupt candidate is rejected mid-flight and v2 keeps serving.
  const std::string corrupt_path = "/tmp/ranknet_serve_corrupt_cand.bin";
  serve::AffineRankModel::save_artifact(corrupt_path, 5.0, 5.0);
  {
    std::FILE* f = std::fopen(corrupt_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  auto bad = client.swap_model(corrupt_path);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().action, wire::SwapAction::kRejected);
  EXPECT_EQ(bad.value().active_version, 2u);
  auto still = client.forecast(make_request(3, 11));
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value().model_version, 2u);
  EXPECT_TRUE(cars_identical(still.value().cars, after.value().cars));
}

TEST_F(ServeTest, BadModelSlippingThroughGateIsAutoRolledBackUnderTraffic) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_rollback.sock";
  serve::RegistryConfig reg_cfg;
  reg_cfg.gate.max_prediction_failure_rate = 1.0;  // gate off: probation's job
  boot(cfg, reg_cfg);
  serve::ForecastClient client(client_config());

  ASSERT_TRUE(client.swap_model(kScaledArtifact).ok());  // healthy v2
  const auto rolled_before = counter_value("serve.registry.rolled_back");
  auto ack = client.swap_model(kNanArtifact);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack.value().action, wire::SwapAction::kPromoted);  // v3, rotten

  // The first full-tier serving result exposes the NaNs: the response
  // carries an explicit failure and probation rolls back to v2.
  auto poisoned = client.forecast(make_request(1, 21));
  ASSERT_TRUE(poisoned.ok());
  EXPECT_FALSE(poisoned.value().ok());
  EXPECT_EQ(poisoned.value().model_version, 3u);

  auto recovered = client.forecast(make_request(2, 22));
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().ok()) << recovered.value().message;
  EXPECT_EQ(recovered.value().model_version, 2u);
  for (const auto& car : recovered.value().cars) {
    for (double v : car.median) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(counter_value("serve.registry.rolled_back"), rolled_before);
}

TEST_F(ServeTest, ShutdownFrameStopsTheServerCleanly) {
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_shutdown.sock";
  boot(cfg);
  serve::ForecastClient client(client_config());
  ASSERT_TRUE(client.forecast(make_request(1, 1)).ok());
  EXPECT_TRUE(client.shutdown_server().ok());
  server_->stop();  // joins promptly: both threads saw the stop flag
  EXPECT_FALSE(server_->running());
}

TEST_F(ServeTest, EngineThreadsServeIdenticalBytesToInline) {
  // Same request through a threads=2 registry and a threads=0 registry:
  // the engine's determinism contract must survive the serving stack.
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_threads.sock";
  serve::RegistryConfig reg_cfg;
  reg_cfg.engine_threads = 2;
  boot(cfg, reg_cfg);
  serve::ForecastClient client(client_config());
  auto threaded = client.forecast(make_request(1, 33));
  ASSERT_TRUE(threaded.ok());
  ASSERT_TRUE(threaded.value().ok());
  server_->stop();

  serve::ServerConfig cfg2;
  cfg2.socket_path = "/tmp/ranknet_serve_threads0.sock";
  boot(cfg2);
  serve::ForecastClient inline_client(client_config());
  auto inline_res = inline_client.forecast(make_request(2, 33));
  ASSERT_TRUE(inline_res.ok());
  EXPECT_TRUE(cars_identical(threaded.value().cars, inline_res.value().cars));
}

// --- race table & fleet-sharded serving ------------------------------------

TEST(RaceTable, SnapshotFindSurvivesConcurrentReplacement) {
  serve::RaceTable table(4);
  EXPECT_EQ(table.buckets(), 4u);
  auto race = sim::simulate_race({"Iowa", 2018, 40, sim::Usage::kTest});
  const std::string id = race.id();
  table.insert(race);
  ASSERT_EQ(table.size(), 1u);

  auto snapshot = table.find(id);
  ASSERT_NE(snapshot, nullptr);
  const auto digest_before = snapshot->digest;

  // Writers replacing the entry and readers resolving it, concurrently.
  // Every successful find must return a coherent entry (race + matching
  // digest); the snapshot taken above must stay untouched.
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          table.insert(sim::simulate_race(
              {"Iowa", 2018, 40, sim::Usage::kTest},
              /*base_seed=*/static_cast<std::uint64_t>(i)));
        } else {
          auto e = table.find(id);
          if (!e || !e->race || e->race->id() != id) bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(snapshot->digest, digest_before);  // snapshot is immutable
  EXPECT_EQ(table.find("no-such-race"), nullptr);
  EXPECT_EQ(table.size(), 1u);  // replacements, not duplicates
}

TEST_F(ServeTest, ShardedServingBytesMatchSingleShard) {
  // The same request answered by a 4-shard fleet and the pre-fleet
  // single-shard layout must be byte-identical: routing is load placement,
  // never math.
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_shards4.sock";
  serve::RegistryConfig reg_cfg;
  reg_cfg.shards = 4;
  boot(cfg, reg_cfg);
  serve::ForecastClient sharded_client(client_config());
  auto sharded = sharded_client.forecast(make_request(1, 55));
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(sharded.value().ok()) << sharded.value().message;
  server_->stop();

  serve::ServerConfig cfg1;
  cfg1.socket_path = "/tmp/ranknet_serve_shards1.sock";
  boot(cfg1);  // default RegistryConfig: shards = 1
  serve::ForecastClient single_client(client_config());
  auto single = single_client.forecast(make_request(2, 55));
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(cars_identical(sharded.value().cars, single.value().cars));
}

TEST_F(ServeTest, AddRaceUnderLoadNeverBlocksOrDropsServing) {
  // The PR-7 hot path took one global races_mutex_ on every worker
  // iteration, so loading race N+1 contended with serving race N. Now
  // admission resolves a bucket-sharded snapshot once and the worker takes
  // no race-table lock at all. This test drives sustained forecasts for
  // two races across client threads WHILE a loader thread hammers
  // add_race, and requires every single request answered healthily.
  serve::ServerConfig cfg;
  cfg.socket_path = "/tmp/ranknet_serve_contention.sock";
  cfg.queue_capacity = 256;
  cfg.overload_watermark = 240;
  serve::RegistryConfig reg_cfg;
  reg_cfg.shards = 4;
  boot(cfg, reg_cfg);

  auto second = sim::simulate_race({"Pocono", 2019, 60, sim::Usage::kTest});
  server_->add_race(second);
  const std::string ids[2] = {race_->id(), second.id()};

  std::atomic<bool> stop_loader{false};
  std::thread loader([&] {
    // Distinct ids: the table grows while buckets churn.
    int n = 0;
    while (!stop_loader.load()) {
      auto extra =
          sim::simulate_race({"Texas", 2013 + (n % 7), 40, sim::Usage::kTest},
                             static_cast<std::uint64_t>(n));
      server_->add_race(std::move(extra));
      ++n;
    }
  });

  constexpr int kClients = 3;
  constexpr int kPerClient = 25;
  std::atomic<int> answered{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::ForecastClient client(client_config());
      for (int i = 0; i < kPerClient; ++i) {
        auto req = make_request(static_cast<std::uint64_t>(c * 1000 + i),
                                static_cast<std::uint64_t>(i));
        req.race_id = ids[(c + i) % 2];
        auto res = client.forecast(req);
        if (res.ok() && res.value().ok()) {
          answered.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  stop_loader.store(true);
  loader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  // Both races routed through the fleet: at least one serve.shard.* group
  // counter moved.
  std::uint64_t shard_groups = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    shard_groups += counter_value(
        ("serve.shard." + std::to_string(s) + ".groups").c_str());
  }
  EXPECT_GT(shard_groups, 0u);
}

}  // namespace

// Observability layer: registry semantics, golden-snapshot exports,
// round-trips, span bookkeeping, and a concurrency smoke test.
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/device_model.hpp"
#include "core/parallel_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simulator/season.hpp"
#include "util/rng.hpp"

namespace {

using namespace ranknet;

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(ObsRegistry, FindOrCreateReturnsStableHandles) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.calls");
  obs::Counter& b = reg.counter("x.calls");
  EXPECT_EQ(&a, &b);  // same name -> same metric
  a.add(2);
  EXPECT_EQ(b.value(), 2u);

  obs::Gauge& g = reg.gauge("x.seconds");
  g.add(0.25);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("x.seconds").value(), 0.5);
  g.record_max(0.1);  // below current value: no-op
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
  g.record_max(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);

  reg.reset();
  EXPECT_EQ(a.value(), 0u);  // handles survive a reset
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsRegistry, HistogramBucketsAndQuantiles) {
  obs::Registry reg;
  const std::vector<double> bounds{0.1, 1.0};
  obs::Histogram& h = reg.histogram("lat", bounds);
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);  // above the last bound -> +Inf bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 5.55, 1e-12);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  // Quantiles interpolate inside buckets and cap at the last finite bound.
  EXPECT_GT(h.approx_quantile(0.5), 0.1);
  EXPECT_LE(h.approx_quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.approx_quantile(1.0), 1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Golden-snapshot exports (stable ordering, deterministic values)
// ---------------------------------------------------------------------------

TEST(ObsExport, JsonGoldenSnapshot) {
  obs::Registry reg;
  reg.counter("alpha.count").add(3);
  reg.gauge("beta.seconds").add(1.5);
  const std::vector<double> bounds{0.1, 1.0};
  obs::Histogram& h = reg.histogram("gamma.seconds", bounds);
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"alpha.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"beta.seconds\": 1.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"gamma.seconds\": {\"count\": 3, \"sum\": 5.55, \"buckets\": "
      "[{\"le\": 0.1, \"count\": 1}, {\"le\": 1, \"count\": 1}, "
      "{\"le\": \"+Inf\", \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(reg.to_json(), expected);
  // Repeated exports of unchanged state are byte-identical.
  EXPECT_EQ(reg.to_json(), reg.to_json());
}

TEST(ObsExport, PrometheusGoldenSnapshot) {
  obs::Registry reg;
  reg.counter("alpha.count").add(3);
  reg.gauge("beta.seconds").add(1.5);
  const std::vector<double> bounds{0.1, 1.0};
  obs::Histogram& h = reg.histogram("gamma.seconds", bounds);
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string expected =
      "# TYPE ranknet_alpha_count counter\n"
      "ranknet_alpha_count 3\n"
      "# TYPE ranknet_beta_seconds gauge\n"
      "ranknet_beta_seconds 1.5\n"
      "# TYPE ranknet_gamma_seconds histogram\n"
      "ranknet_gamma_seconds_bucket{le=\"0.1\"} 1\n"
      "ranknet_gamma_seconds_bucket{le=\"1\"} 2\n"
      "ranknet_gamma_seconds_bucket{le=\"+Inf\"} 3\n"
      "ranknet_gamma_seconds_sum 5.55\n"
      "ranknet_gamma_seconds_count 3\n";
  EXPECT_EQ(reg.to_prometheus(), expected);
  EXPECT_EQ(reg.to_prometheus(), reg.to_prometheus());
}

/// Extract the number following `key` in `text` (first occurrence).
double NumberAfter(const std::string& text, const std::string& key) {
  const auto pos = text.find(key);
  EXPECT_NE(pos, std::string::npos) << "missing key: " << key;
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

TEST(ObsExport, ValuesRoundTripThroughBothFormats) {
  obs::Registry reg;
  reg.counter("rt.requests").add(12345);
  reg.gauge("rt.seconds").add(0.125);
  obs::Histogram& h = reg.latency_histogram("rt.latency");
  for (int i = 0; i < 7; ++i) h.observe(0.002);

  const std::string json = reg.to_json();
  EXPECT_EQ(NumberAfter(json, "\"rt.requests\": "), 12345.0);
  EXPECT_EQ(NumberAfter(json, "\"rt.seconds\": "), 0.125);
  EXPECT_EQ(NumberAfter(json, "\"rt.latency\": {\"count\": "), 7.0);

  // "\n" anchors to line starts, skipping the "# TYPE ..." comment lines.
  const std::string prom = reg.to_prometheus();
  EXPECT_EQ(NumberAfter(prom, "\nranknet_rt_requests "), 12345.0);
  EXPECT_EQ(NumberAfter(prom, "\nranknet_rt_seconds "), 0.125);
  EXPECT_EQ(NumberAfter(prom, "\nranknet_rt_latency_count "), 7.0);
  // Cumulative-le invariant: the +Inf bucket equals the total count.
  EXPECT_EQ(NumberAfter(prom, "ranknet_rt_latency_bucket{le=\"+Inf\"} "),
            7.0);
}

// ---------------------------------------------------------------------------
// Singleton shims and the engine book into the process-wide registry
// ---------------------------------------------------------------------------

TEST(ObsIntegration, EngineBookingsLandInProcessRegistry) {
  obs::set_spans_enabled(true);
  auto& reg = obs::Registry::instance();
  core::EngineCounters::instance().reset();
  core::DegradationCounters::instance().reset();
  for (std::size_t s = 0;
       s < static_cast<std::size_t>(obs::Stage::kCount); ++s) {
    obs::stage_histogram(static_cast<obs::Stage>(s)).reset();
  }

  const auto race = sim::simulate_race({"Indy500", 2019, 60,
                                        sim::Usage::kTest});
  core::CurRankForecaster model;
  core::ParallelForecastEngine engine(model, /*threads=*/1);
  util::Rng rng(17);
  (void)engine.forecast(race, 30, 5, 4, rng);
  (void)engine.forecast(race, 40, 5, 4, rng);

  const auto stats = engine.stats();
  EXPECT_EQ(reg.counter("engine.forecasts").value(), stats.forecasts);
  EXPECT_EQ(reg.counter("engine.tasks").value(), stats.tasks);
  EXPECT_EQ(reg.counter("degradation.full_cars").value(),
            engine.degradation().full_cars);
  // Each forecast opens one prepare / partition / merge span.
  EXPECT_EQ(obs::stage_histogram(obs::Stage::kPrepare).count(), 2u);
  EXPECT_EQ(obs::stage_histogram(obs::Stage::kPartition).count(), 2u);
  EXPECT_EQ(obs::stage_histogram(obs::Stage::kMerge).count(), 2u);
  EXPECT_EQ(obs::stage_histogram(obs::Stage::kFallback).count(), 0u);
}

TEST(ObsIntegration, SpanScopeRespectsGlobalSwitch) {
  obs::Histogram& h = obs::stage_histogram(obs::Stage::kIngest);
  h.reset();
  obs::set_spans_enabled(false);
  { obs::SpanScope span(obs::Stage::kIngest); }
  EXPECT_EQ(h.count(), 0u);
  obs::set_spans_enabled(true);
  { obs::SpanScope span(obs::Stage::kIngest); }
  EXPECT_EQ(h.count(), 1u);
  {
    obs::SpanScope span(obs::Stage::kIngest);
    EXPECT_GE(span.stop(), 0.0);
  }  // stop() already booked; destructor must not double-count
  EXPECT_EQ(h.count(), 2u);
}

// ---------------------------------------------------------------------------
// Concurrency smoke: exact totals under contention
// ---------------------------------------------------------------------------

TEST(ObsConcurrency, CounterAndHistogramTotalsAreExact) {
  auto& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("test.smoke.counter");
  obs::Histogram& h = reg.latency_histogram("test.smoke.latency");
  c.reset();
  h.reset();

  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < kIncrements; ++i) {
        c.add(1);
        if (i % 100 == 0) h.observe(1e-3);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const auto expected_obs =
      static_cast<std::uint64_t>(kThreads) * (kIncrements / 100);
  EXPECT_EQ(h.count(), expected_obs);
  std::uint64_t bucket_total = 0;
  for (const auto n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, expected_obs);  // no sample lost between buckets
}

}  // namespace

// ParallelForecastEngine determinism harness.
//
// The engine's contract (src/core/parallel_engine.hpp) is that forecasts
// are BIT-identical for any thread count — including 1 — and identical to
// calling the wrapped forecaster directly. These tests compare raw bytes,
// not values-within-tolerance: a single reordered floating-point add in the
// partitioned path would fail them.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>

#include "core/baselines.hpp"
#include "core/device_model.hpp"
#include "core/parallel_engine.hpp"
#include "core/ranknet.hpp"
#include "simulator/season.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ranknet;

// Bytewise equality of two sample maps (same cars, same shapes, same bits).
::testing::AssertionResult SamplesIdentical(const core::RaceSamples& a,
                                            const core::RaceSamples& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "car count " << a.size() << " vs " << b.size();
  }
  for (const auto& [car_id, m] : a) {
    const auto it = b.find(car_id);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "car " << car_id << " missing";
    }
    const auto& n = it->second;
    if (m.rows() != n.rows() || m.cols() != n.cols()) {
      return ::testing::AssertionFailure()
             << "car " << car_id << " shape mismatch";
    }
    if (std::memcmp(m.flat().data(), n.flat().data(),
                    m.flat().size() * sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "car " << car_id << " bytes differ";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(ThreadPool, RunsSubmittedTasksOnWorkers) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SizeZeroRunsInline) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const auto tid = std::this_thread::get_id();
  auto fut = pool.submit([tid] { return std::this_thread::get_id() == tid; });
  EXPECT_TRUE(fut.get());
}

TEST(RngStream, KeyedStreamsAreDeterministicAndDistinct) {
  util::Rng a = util::Rng::stream(42, 3, 7);
  util::Rng b = util::Rng::stream(42, 3, 7);
  EXPECT_EQ(a(), b());
  // Neighbouring keys and bases must decorrelate.
  EXPECT_NE(util::Rng::stream(42, 3, 7)(), util::Rng::stream(42, 3, 8)());
  EXPECT_NE(util::Rng::stream(42, 3, 7)(), util::Rng::stream(42, 4, 7)());
  EXPECT_NE(util::Rng::stream(42, 3, 7)(), util::Rng::stream(43, 3, 7)());
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    vocab_ = new features::CarVocab({*race_});

    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 8;
    cfg.embed_dim = 2;
    cfg.vocab = vocab_->size();
    model_ = std::make_shared<core::LstmSeqModel>(cfg);
    model_->set_scaler(features::StandardScaler(17.0, 9.0));

    pit_ = std::make_shared<core::PitModel>();
    pit_->set_scaler(features::StandardScaler(15.0, 6.0));
  }
  static void TearDownTestSuite() {
    model_.reset();
    pit_.reset();
    delete vocab_;
    delete race_;
  }

  /// Forecast through engines at several thread counts and require every
  /// result byte-identical to the direct (unwrapped) call with the same
  /// seed. Also checks the rng protocol: engine and direct call must leave
  /// the caller's generator in the same state.
  static void ExpectThreadInvariant(core::RaceForecaster& forecaster,
                                    int origin, int horizon, int samples,
                                    std::uint64_t seed) {
    util::Rng direct_rng(seed);
    const auto direct =
        forecaster.forecast(*race_, origin, horizon, samples, direct_rng);
    ASSERT_FALSE(direct.empty());
    const std::uint64_t direct_next = direct_rng();

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      core::ParallelForecastEngine engine(forecaster, threads);
      util::Rng rng(seed);
      const auto out =
          engine.forecast(*race_, origin, horizon, samples, rng);
      EXPECT_TRUE(SamplesIdentical(direct, out))
          << forecaster.name() << " at " << threads << " threads";
      EXPECT_EQ(rng(), direct_next)
          << forecaster.name() << " rng state diverged at " << threads
          << " threads";
    }
  }

  static telemetry::RaceLog* race_;
  static features::CarVocab* vocab_;
  static std::shared_ptr<core::LstmSeqModel> model_;
  static std::shared_ptr<core::PitModel> pit_;
};
telemetry::RaceLog* ParallelEngineTest::race_ = nullptr;
features::CarVocab* ParallelEngineTest::vocab_ = nullptr;
std::shared_ptr<core::LstmSeqModel> ParallelEngineTest::model_;
std::shared_ptr<core::PitModel> ParallelEngineTest::pit_;

TEST_F(ParallelEngineTest, RankNetOracleThreadInvariant) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  ExpectThreadInvariant(f, 50, 3, 7, 9001);
}

TEST_F(ParallelEngineTest, RankNetPitModelThreadInvariant) {
  // kPitModel couples cars through the shared status realization — the
  // hardest case for partition invariance.
  core::RankNetForecaster f(model_, pit_, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kPitModel, "mlp");
  ExpectThreadInvariant(f, 60, 4, 5, 1234);
}

TEST_F(ParallelEngineTest, ArimaThreadInvariant) {
  core::ArimaForecaster f;
  ExpectThreadInvariant(f, 50, 5, 11, 777);
}

TEST_F(ParallelEngineTest, CurRankThreadInvariant) {
  core::CurRankForecaster f;
  ExpectThreadInvariant(f, 50, 5, 11, 777);
}

TEST_F(ParallelEngineTest, TaskGranularityDoesNotChangeBits) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  core::ParallelForecastEngine one_car_tasks(f, 2, /*max_cars_per_task=*/1);
  core::ParallelForecastEngine one_big_task(f, 2, /*max_cars_per_task=*/100);
  util::Rng rng_a(5), rng_b(5);
  const auto a = one_car_tasks.forecast(*race_, 50, 3, 7, rng_a);
  const auto b = one_big_task.forecast(*race_, 50, 3, 7, rng_b);
  EXPECT_TRUE(SamplesIdentical(a, b));
  EXPECT_GT(one_car_tasks.stats().tasks, one_big_task.stats().tasks);
}

TEST_F(ParallelEngineTest, NonPartitionableFallsBackToDelegation) {
  core::TransformerConfig cfg;
  cfg.cov_dim = features::CovariateConfig{}.dim();
  cfg.model_dim = 16;
  cfg.heads = 4;
  cfg.blocks = 1;
  cfg.embed_dim = 2;
  cfg.vocab = vocab_->size();
  cfg.infer_context = 12;
  auto tf = std::make_shared<core::TransformerSeqModel>(cfg);
  tf->set_scaler(features::StandardScaler(17.0, 9.0));
  core::TransformerForecaster f(tf, nullptr, *vocab_,
                                features::CovariateConfig{},
                                core::StatusSource::kOracle, "tf");

  core::ParallelForecastEngine engine(f, 4);
  EXPECT_FALSE(engine.partitioned());
  util::Rng rng_a(4), rng_b(4);
  const auto direct = f.forecast(*race_, 40, 2, 3, rng_a);
  const auto wrapped = engine.forecast(*race_, 40, 2, 3, rng_b);
  EXPECT_TRUE(SamplesIdentical(direct, wrapped));
}

TEST_F(ParallelEngineTest, WorkspaceHealthMirroredIntoDegradationCounters) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  auto& global = core::DegradationCounters::instance();

  // threads=0 runs every task inline on the calling thread, so arena reuse
  // is deterministic (one thread_local workspace serves every epoch).
  core::ParallelForecastEngine engine(f, 0);
  global.reset();
  util::Rng warm_rng(31);
  (void)engine.forecast(*race_, 50, 3, 6, warm_rng);   // grows the arena
  EXPECT_GT(global.workspace_epochs(), 0u);
  util::Rng warm2_rng(31);
  (void)engine.forecast(*race_, 50, 3, 6, warm2_rng);  // closes warm epochs

  const auto epochs_before = global.workspace_epochs();
  const auto reused_before = global.workspace_reused_epochs();
  const auto allocs_before = global.workspace_block_allocs();
  util::Rng rng(31);
  (void)engine.forecast(*race_, 50, 3, 6, rng);
  EXPECT_GT(global.workspace_epochs(), epochs_before);
  EXPECT_EQ(global.workspace_block_allocs(), allocs_before)
      << "steady-state forecast allocated arena blocks";
  EXPECT_EQ(global.workspace_epochs() - epochs_before,
            global.workspace_reused_epochs() - reused_before)
      << "steady-state forecast had a non-reused workspace epoch";

  // Worker threads book into the same global mirror.
  core::ParallelForecastEngine threaded(f, 2);
  global.reset();
  util::Rng trng(31);
  (void)threaded.forecast(*race_, 50, 3, 6, trng);
  EXPECT_GT(global.workspace_epochs(), 0u);
  EXPECT_GE(global.workspace_epochs(), global.workspace_reused_epochs());
}

TEST_F(ParallelEngineTest, OwningConstructorAndStats) {
  auto f = std::make_shared<core::CurRankForecaster>();
  core::ParallelForecastEngine engine(f, 2);
  EXPECT_EQ(engine.name(), f->name());
  EXPECT_TRUE(engine.partitioned());

  core::EngineCounters::instance().reset();
  util::Rng rng(1);
  (void)engine.forecast(*race_, 50, 3, 4, rng);
  (void)engine.forecast(*race_, 60, 3, 4, rng);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.forecasts, 2u);
  EXPECT_GE(stats.tasks, 2u);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.task_seconds, 0.0);

  // Global counters mirror the per-engine stats.
  const auto& counters = core::EngineCounters::instance();
  EXPECT_EQ(counters.forecasts(), 2u);
  EXPECT_EQ(counters.tasks(), stats.tasks);

  engine.reset_stats();
  EXPECT_EQ(engine.stats().forecasts, 0u);
}

}  // namespace

// Behavioral tests of the NN stack: optimizer convergence, serialization,
// sampling, and the batch/step equivalences the forecaster relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "nn/adam.hpp"
#include "nn/dense.hpp"
#include "tensor/kernels.hpp"
#include "nn/gaussian.hpp"
#include "nn/lstm.hpp"
#include "nn/serialize.hpp"
#include "tensor/serialize.hpp"
#include "util/stats.hpp"

namespace {

using namespace ranknet;
using nn::Activation;
using nn::Dense;
using nn::GaussianHead;
using tensor::Matrix;
using util::Rng;

TEST(Adam, MinimizesQuadratic) {
  // One parameter, loss (w - 3)^2 per element.
  nn::Parameter w("w", Matrix(2, 2, 10.0));
  nn::AdamConfig cfg;
  cfg.lr = 0.1;
  nn::Adam adam({&w}, cfg);
  for (int i = 0; i < 500; ++i) {
    for (std::size_t j = 0; j < w.value.size(); ++j) {
      w.grad.flat()[j] = 2.0 * (w.value.flat()[j] - 3.0);
    }
    adam.step();
  }
  for (double v : w.value.flat()) EXPECT_NEAR(v, 3.0, 1e-3);
}

TEST(Adam, StepZeroesGradients) {
  nn::Parameter w("w", Matrix(1, 4, 1.0));
  nn::Adam adam({&w});
  w.grad.fill(5.0);
  adam.step();
  for (double g : w.grad.flat()) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Adam, ClipGradientsBoundsGlobalNorm) {
  nn::Parameter a("a", Matrix(1, 3));
  nn::Parameter b("b", Matrix(1, 4));
  nn::Adam adam({&a, &b});
  a.grad.fill(10.0);
  b.grad.fill(10.0);
  const double before = adam.clip_gradients(1.0);
  EXPECT_GT(before, 1.0);
  double norm2 = tensor::squared_norm(a.grad) + tensor::squared_norm(b.grad);
  EXPECT_NEAR(std::sqrt(norm2), 1.0, 1e-9);
}

TEST(DenseAdam, LearnsLinearMap) {
  Rng rng(1);
  Dense layer(3, 1, rng);
  nn::AdamConfig cfg;
  cfg.lr = 0.02;
  nn::Adam adam(layer.params(), cfg);
  // Target: y = 2x0 - x1 + 0.5x2 + 1.
  for (int step = 0; step < 800; ++step) {
    const Matrix x = Matrix::randn(16, 3, rng);
    Matrix y = layer.forward(x);
    Matrix dy(16, 1);
    double loss = 0.0;
    for (std::size_t i = 0; i < 16; ++i) {
      const double target = 2 * x(i, 0) - x(i, 1) + 0.5 * x(i, 2) + 1.0;
      dy(i, 0) = 2.0 * (y(i, 0) - target) / 16.0;
      loss += (y(i, 0) - target) * (y(i, 0) - target);
    }
    layer.backward(dy);
    adam.step();
    if (step == 799) {
      EXPECT_LT(loss / 16.0, 1e-3);
    }
  }
}

TEST(GaussianHead, SampleMatchesParameters) {
  Rng rng(2);
  GaussianHead::Output out;
  out.mu = Matrix(1, 1, 4.0);
  out.sigma = Matrix(1, 1, 2.0);
  util::RunningStats st;
  for (int i = 0; i < 20000; ++i) {
    st.add(GaussianHead::sample(out, rng)(0, 0));
  }
  EXPECT_NEAR(st.mean(), 4.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(GaussianHead, SigmaAlwaysPositive) {
  Rng rng(3);
  GaussianHead head(4, 1, rng);
  const Matrix h = Matrix::randn(32, 4, rng, 10.0);  // extreme inputs
  const auto out = head.forward_inference(h);
  for (double s : out.sigma.flat()) EXPECT_GT(s, 0.0);
}

TEST(GaussianHead, NllLowerForBetterFit) {
  Rng rng(4);
  GaussianHead::Output good, bad;
  good.mu = Matrix(8, 1, 1.0);
  good.sigma = Matrix(8, 1, 0.5);
  bad.mu = Matrix(8, 1, 5.0);
  bad.sigma = Matrix(8, 1, 0.5);
  const Matrix z(8, 1, 1.1);
  EXPECT_LT(GaussianHead::nll(good, z, {}), GaussianHead::nll(bad, z, {}));
}

TEST(GaussianHead, WeightsTiltTheLoss) {
  GaussianHead::Output out;
  out.mu = Matrix(2, 1);
  out.mu(0, 0) = 0.0;   // perfect on row 0
  out.mu(1, 0) = 10.0;  // terrible on row 1
  out.sigma = Matrix(2, 1, 1.0);
  Matrix z(2, 1, 0.0);
  const std::vector<double> weight_bad_row{1.0, 9.0};
  const std::vector<double> weight_good_row{9.0, 1.0};
  EXPECT_GT(GaussianHead::nll(out, z, weight_bad_row),
            GaussianHead::nll(out, z, weight_good_row));
}

TEST(Lstm, StatefulStepsEqualBatchForward) {
  Rng rng(5);
  nn::LstmLayer lstm(4, 6, rng);
  std::vector<Matrix> xs;
  for (int t = 0; t < 8; ++t) xs.push_back(Matrix::randn(3, 4, rng));
  const auto hs = lstm.forward(xs);
  nn::LstmState state;
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const auto h = lstm.step(xs[t], state);
    for (std::size_t i = 0; i < h.size(); ++i) {
      ASSERT_NEAR(h.flat()[i], hs[t].flat()[i], 1e-12);
    }
  }
}

TEST(Serialize, RoundTripRestoresParams) {
  Rng rng(6);
  Dense a(5, 3, rng), b(5, 3, rng);
  const std::string path = "/tmp/ranknet_test_params.bin";
  nn::save_params(path, a.params());
  // b starts different...
  bool same = true;
  for (std::size_t i = 0; i < a.params().size(); ++i) {
    if (!(a.params()[i]->value == b.params()[i]->value)) same = false;
  }
  EXPECT_FALSE(same);
  nn::load_params(path, b.params());
  for (std::size_t i = 0; i < a.params().size(); ++i) {
    EXPECT_TRUE(a.params()[i]->value == b.params()[i]->value);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsWrongShape) {
  Rng rng(7);
  Dense a(5, 3, rng);
  Dense c(4, 3, rng);  // different input dim, same param names
  const std::string path = "/tmp/ranknet_test_params2.bin";
  nn::save_params(path, a.params());
  EXPECT_THROW(nn::load_params(path, c.params()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsMissingFile) {
  Rng rng(8);
  Dense a(2, 2, rng);
  EXPECT_THROW(nn::load_params("/tmp/definitely_missing_file.bin",
                               a.params()),
               std::runtime_error);
  const auto s =
      nn::try_load_params("/tmp/definitely_missing_file.bin", a.params());
  EXPECT_EQ(s.code(), ranknet::util::StatusCode::kNotFound);
}

TEST(Serialize, BitFlipAnywhereIsRejectedAndLeavesParamsUntouched) {
  Rng rng(9);
  Dense a(4, 3, rng), b(4, 3, rng);
  const std::string path = "/tmp/ranknet_test_bitflip.bin";
  nn::save_params(path, a.params());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  // Flip one bit in several positions across the file: header fields and
  // deep payload alike must fail checksum/structure validation.
  for (const std::size_t pos :
       {std::size_t{3}, std::size_t{9}, std::size_t{30},
        bytes.size() / 2, bytes.size() - 1}) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(damaged.data(),
                static_cast<std::streamsize>(damaged.size()));
    }
    // Snapshot b, attempt the load, verify rejection and no mutation.
    const auto before = b.params()[0]->value;
    const auto s = nn::try_load_params(path, b.params());
    EXPECT_FALSE(s.ok()) << "bit flip at " << pos << " was accepted";
    EXPECT_TRUE(b.params()[0]->value == before)
        << "failed load mutated parameters (flip at " << pos << ")";
    EXPECT_THROW(nn::load_params(path, b.params()), std::runtime_error);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, TruncatedArtifactIsRejected) {
  Rng rng(10);
  Dense a(4, 3, rng);
  const std::string path = "/tmp/ranknet_test_truncated.bin";
  nn::save_params(path, a.params());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const auto s = nn::try_load_params(path, a.params());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ranknet::util::StatusCode::kCorruptData);
  std::filesystem::remove(path);
}

TEST(Serialize, LegacyV1ArtifactStillLoads) {
  // Hand-build a v1 file (bare magic, no version/size/checksum) the way the
  // pre-v2 writer did: count, then name-length/name/matrix per parameter.
  Rng rng(11);
  Dense a(3, 2, rng), b(3, 2, rng);
  const std::string path = "/tmp/ranknet_test_v1.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t magic_v1 = 0x524b4e45542d3031ULL;  // "RKNET-01"
    out.write(reinterpret_cast<const char*>(&magic_v1), sizeof(magic_v1));
    const std::uint64_t count = a.params().size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto* p : a.params()) {
      const std::uint64_t n = p->name.size();
      out.write(reinterpret_cast<const char*>(&n), sizeof(n));
      out.write(p->name.data(), static_cast<std::streamsize>(n));
      tensor::write_matrix(out, p->value);
    }
  }
  nn::load_params(path, b.params());
  for (std::size_t i = 0; i < a.params().size(); ++i) {
    EXPECT_TRUE(a.params()[i]->value == b.params()[i]->value);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, SavedArtifactsUseTheV2ChecksummedFormat) {
  Rng rng(12);
  Dense a(2, 2, rng);
  const std::string path = "/tmp/ranknet_test_v2magic.bin";
  nn::save_params(path, a.params());
  std::ifstream in(path, std::ios::binary);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  EXPECT_EQ(magic, 0x524b4e54763253ULL);  // v2 magic
  std::filesystem::remove(path);
}

TEST(Serialize, GarbageFileIsStatusNotCrash) {
  const std::string path = "/tmp/ranknet_test_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model artifact at all";
  }
  Rng rng(13);
  Dense a(2, 2, rng);
  const auto s = nn::try_load_params(path, a.params());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ranknet::util::StatusCode::kCorruptData);
  std::filesystem::remove(path);
}

}  // namespace

#include <gtest/gtest.h>

#include "features/scaler.hpp"
#include "features/transforms.hpp"
#include "features/window.hpp"
#include "simulator/season.hpp"

#include <sstream>

namespace {

using namespace ranknet;

telemetry::RaceLog tiny_race() {
  telemetry::EventInfo info;
  info.name = "Tiny";
  info.year = 2020;
  info.total_laps = 6;
  using telemetry::LapStatus;
  using telemetry::TrackStatus;
  std::vector<telemetry::LapRecord> recs;
  auto add = [&](int rank, int car, int lap, telemetry::LapStatus ls,
                 telemetry::TrackStatus ts) {
    recs.push_back({rank, car, lap, 50.0, rank == 1 ? 0.0 : 1.0, ls, ts});
  };
  // Car 1: pit on lap 4. Car 2: never pits. Laps 2-3 under yellow.
  for (int lap = 1; lap <= 6; ++lap) {
    const auto ts = (lap == 2 || lap == 3) ? TrackStatus::kYellow
                                           : TrackStatus::kGreen;
    add(1, 1, lap, lap == 4 ? LapStatus::kPit : LapStatus::kNormal, ts);
    add(2, 2, lap, LapStatus::kNormal, ts);
  }
  return telemetry::RaceLog(info, std::move(recs));
}

TEST(Transforms, StatusAndAgeFeatures) {
  const auto race = tiny_race();
  const auto f = features::compute_status_features(race.car(1));
  // PitAge accumulates then resets at the pit lap.
  EXPECT_EQ(f.pit_age, (std::vector<double>{1, 2, 3, 0, 1, 2}));
  // CautionLaps counts yellow laps since last pit (laps 2,3 yellow).
  EXPECT_EQ(f.caution_laps, (std::vector<double>{0, 1, 2, 0, 0, 0}));
  EXPECT_EQ(f.lap_status[3], 1.0);
  EXPECT_EQ(f.track_status[1], 1.0);
  EXPECT_EQ(f.track_status[4], 0.0);
}

TEST(Transforms, LapsToNextPit) {
  const auto race = tiny_race();
  const auto to_pit = features::laps_to_next_pit(race.car(1));
  // Pit is at index 3: distances 3,2,1,0 then no further stop (to end: 6).
  EXPECT_EQ(to_pit[0], 3.0);
  EXPECT_EQ(to_pit[2], 1.0);
  EXPECT_EQ(to_pit[3], 0.0);
  EXPECT_EQ(to_pit[4], 2.0);  // sentinel: end of series at index 6
}

TEST(Transforms, RaceContext) {
  const auto race = tiny_race();
  const auto ctx = features::compute_race_context(race);
  EXPECT_EQ(ctx.total_pit_count[3], 1.0);
  EXPECT_EQ(ctx.total_pit_count[0], 0.0);
  EXPECT_EQ(ctx.total_caution[1], 1.0);
  EXPECT_EQ(ctx.total_caution[4], 0.0);
}

TEST(Transforms, LeaderPitCount) {
  const auto race = tiny_race();
  // Car 1 leads and pits lap 4 => for car 2, one leader pit at lap 4.
  const auto lpc = features::compute_leader_pit_count(race, 2);
  EXPECT_EQ(lpc[3], 1.0);
  EXPECT_EQ(lpc[2], 0.0);
  // The leader itself has no cars ahead pitting.
  const auto lpc1 = features::compute_leader_pit_count(race, 1);
  EXPECT_EQ(lpc1[3], 0.0);
}

TEST(Covariates, DimMatchesConfig) {
  features::CovariateConfig full;
  EXPECT_EQ(full.dim(), 9u);
  features::CovariateConfig none;
  none.race_status = none.age_features = none.context_features =
      none.shift_features = false;
  EXPECT_EQ(none.dim(), 0u);
}

TEST(Covariates, ShiftFeaturesLookAhead) {
  const auto race = tiny_race();
  const auto streams = features::StatusStreams::from_race(race, 1);
  features::CovariateConfig cfg;  // full, shift = 2
  const auto covs = features::build_covariates(streams, cfg);
  ASSERT_EQ(covs.size(), 6u);
  ASSERT_EQ(covs[0].size(), 9u);
  // Layout: [track, lap, caution/10, age/40, leader/10, total/10,
  //          shift_lap, shift_track, shift_total/10].
  // At lap index 1 (lap 2), shift 2 looks at lap 4 = pit lap of car 1.
  EXPECT_EQ(covs[1][6], 1.0);
  // At index 4 (lap 5), shift 2 looks past the end -> zeros.
  EXPECT_EQ(covs[4][6], 0.0);
  // Age features recomputed from statuses match compute_status_features.
  const auto f = features::compute_status_features(race.car(1));
  for (std::size_t t = 0; t < 6; ++t) {
    EXPECT_NEAR(covs[t][3], f.pit_age[t] / 40.0, 1e-12);
    EXPECT_NEAR(covs[t][2], f.caution_laps[t] / 10.0, 1e-12);
  }
}

TEST(CarVocab, IndexingAndUnknownSlot) {
  const auto race = tiny_race();
  features::CarVocab vocab({race});
  EXPECT_EQ(vocab.size(), 3);  // cars 1, 2 + unknown
  EXPECT_EQ(vocab.index(1), 0);
  EXPECT_EQ(vocab.index(2), 1);
  EXPECT_EQ(vocab.index(77), 2);  // unknown maps to the last slot
}

TEST(Windows, BuildShapesWeightsAndStride) {
  const auto ds = sim::build_event_dataset("Indy500");
  features::CarVocab vocab(ds.train);
  features::WindowConfig cfg;
  cfg.encoder_length = 20;
  cfg.decoder_length = 2;
  cfg.stride = 4;
  cfg.change_weight = 9.0;
  const std::vector<telemetry::RaceLog> one{ds.train[0]};
  const auto windows = features::build_windows(one, vocab, cfg);
  ASSERT_FALSE(windows.empty());
  std::size_t weighted = 0;
  for (const auto& w : windows) {
    EXPECT_EQ(w.target.size(), 22u);
    EXPECT_EQ(w.covariates.size(), 22u);
    EXPECT_EQ(w.covariates[0].size(), cfg.covariates.dim());
    EXPECT_TRUE(w.weight == 1.0 || w.weight == 9.0);
    if (w.weight == 9.0) ++weighted;
    EXPECT_GE(w.car_index, 0);
    EXPECT_LT(w.car_index, vocab.size());
  }
  // Rank changes exist, so some windows must carry the higher weight...
  EXPECT_GT(weighted, 0u);
  // ...but not all (most laps are static).
  EXPECT_LT(weighted, windows.size());
}

TEST(Windows, ShortSeriesProduceNoWindows) {
  const auto race = tiny_race();
  features::CarVocab vocab({race});
  features::WindowConfig cfg;  // encoder 60 >> 6 laps
  const auto windows = features::build_windows({race}, vocab, cfg);
  EXPECT_TRUE(windows.empty());
}

TEST(Scaler, TransformInverseRoundTrip) {
  features::StandardScaler s;
  const std::vector<double> xs{2, 4, 6, 8};
  s.fit(xs);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  for (double x : xs) {
    EXPECT_NEAR(s.inverse(s.transform(x)), x, 1e-12);
  }
  EXPECT_NEAR(s.transform(5.0), 0.0, 1e-12);
}

TEST(Scaler, DegenerateInputKeepsUnitScale) {
  features::StandardScaler s;
  const std::vector<double> xs{3, 3, 3};
  s.fit(xs);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
  EXPECT_DOUBLE_EQ(s.transform(4.0), 1.0);
}

TEST(Scaler, SerializeRoundTrip) {
  features::StandardScaler s(2.5, 1.5);
  std::stringstream ss;
  s.save(ss);
  const auto back = features::StandardScaler::load(ss);
  EXPECT_DOUBLE_EQ(back.mean(), 2.5);
  EXPECT_DOUBLE_EQ(back.stddev(), 1.5);
}

}  // namespace

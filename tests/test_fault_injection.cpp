// Fault-tolerance suite: sim::FaultInjector, telemetry::StreamIngestor and
// the forecast engine's degradation ladder, plus the end-to-end property
// the whole PR hangs on — a zero-fault injected stream ingests to a RaceLog
// byte-identical to the clean one, and a damaged stream degrades to a
// well-formed log with every loss accounted for in a counter.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/baselines.hpp"
#include "core/device_model.hpp"
#include "core/parallel_engine.hpp"
#include "serve/affine_model.hpp"
#include "serve/model_registry.hpp"
#include "simulator/fault_injector.hpp"
#include "simulator/season.hpp"
#include "telemetry/stream_ingestor.hpp"

namespace {

using namespace ranknet;
using telemetry::LapRecord;

// Bitwise double compare so NaN-corrupted fields still compare equal to
// themselves across two identical fault realizations.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool RecordsEqual(const LapRecord& a, const LapRecord& b) {
  return a.rank == b.rank && a.car_id == b.car_id && a.lap == b.lap &&
         SameBits(a.lap_time, b.lap_time) &&
         SameBits(a.time_behind_leader, b.time_behind_leader) &&
         a.lap_status == b.lap_status && a.track_status == b.track_status;
}

::testing::AssertionResult StreamsEqual(const std::vector<LapRecord>& a,
                                        const std::vector<LapRecord>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "length " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!RecordsEqual(a[i], b[i])) {
      return ::testing::AssertionFailure() << "records differ at " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

telemetry::RaceLog SmallRace() {
  return sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest});
}

LapRecord MakeRecord(int car, int lap, int rank = 3, double lap_time = 50.0,
                     double behind = 4.0) {
  LapRecord r;
  r.car_id = car;
  r.lap = lap;
  r.rank = rank;
  r.lap_time = lap_time;
  r.time_behind_leader = behind;
  return r;
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, ZeroProfileIsByteIdenticalPassthrough) {
  const auto race = SmallRace();
  sim::FaultInjector feed(race.records(), sim::FaultProfile{}, /*seed=*/123);
  const auto out = feed.drain();
  EXPECT_TRUE(StreamsEqual(out, race.records()));
  const auto& c = feed.counters();
  EXPECT_EQ(c.delivered, race.records().size());
  EXPECT_EQ(c.dropped + c.duplicated + c.corrupted + c.reordered +
                c.stall_ticks,
            0u);
}

TEST(FaultInjector, SameSeedSameFaults) {
  const auto race = SmallRace();
  sim::FaultProfile p;
  p.drop_rate = 0.05;
  p.duplicate_rate = 0.03;
  p.corrupt_rate = 0.02;
  p.reorder_depth = 3;
  p.stall_rate = 0.01;
  sim::FaultInjector a(race.records(), p, 9);
  sim::FaultInjector b(race.records(), p, 9);
  const auto stream_a = a.drain();
  EXPECT_TRUE(StreamsEqual(stream_a, b.drain()));
  // A different seed realizes a different fault pattern.
  sim::FaultInjector d(race.records(), p, 10);
  EXPECT_FALSE(StreamsEqual(stream_a, d.drain()));
}

TEST(FaultInjector, CountersBalanceAndFaultsOccur) {
  const auto race = SmallRace();
  sim::FaultProfile p;
  p.drop_rate = 0.10;
  p.duplicate_rate = 0.05;
  p.corrupt_rate = 0.05;
  p.reorder_depth = 4;
  p.stall_rate = 0.02;
  sim::FaultInjector feed(race.records(), p, 7);
  const auto out = feed.drain();
  const auto& c = feed.counters();
  EXPECT_EQ(c.delivered, out.size());
  EXPECT_EQ(c.delivered + c.dropped,
            race.records().size() + c.duplicated);
  EXPECT_GT(c.dropped, 0u);
  EXPECT_GT(c.duplicated, 0u);
  EXPECT_GT(c.corrupted, 0u);
  EXPECT_GT(c.reordered, 0u);
}

TEST(FaultInjector, ReorderDisplacementIsBounded) {
  std::vector<LapRecord> clean;
  for (int lap = 1; lap <= 200; ++lap) clean.push_back(MakeRecord(1, lap));
  sim::FaultProfile p;
  p.reorder_depth = 3;
  sim::FaultInjector feed(clean, p, 42);
  const auto out = feed.drain();
  ASSERT_EQ(out.size(), clean.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto arrival = static_cast<std::size_t>(out[i].lap - 1);
    EXPECT_LE(arrival > i ? arrival - i : i - arrival, 3u)
        << "record displaced more than reorder_depth at " << i;
  }
  EXPECT_GT(feed.counters().reordered, 0u);
}

// ---------------------------------------------------------------------------
// StreamIngestor
// ---------------------------------------------------------------------------

TEST(StreamIngestor, CleanStreamRoundTripsExactly) {
  const auto race = SmallRace();
  telemetry::StreamIngestor ing;
  for (const auto& rec : race.records()) EXPECT_TRUE(ing.push(rec).ok());
  auto out = ing.finalize(race.info());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().to_csv().to_string(), race.to_csv().to_string());
  EXPECT_EQ(ing.counters().accepted, race.records().size());
  EXPECT_EQ(ing.counters().quarantined(), 0u);
  EXPECT_EQ(ing.counters().imputed, 0u);
  for (int car : out.value().car_ids()) {
    EXPECT_EQ(ing.damage_fraction(car), 0.0);
  }
}

TEST(StreamIngestor, DedupIsIdempotent) {
  // A flaky feed re-sends each record moments after the original (still
  // inside the reorder window). The first copy wins; the log is identical
  // to a clean ingest and every replay is tallied.
  const auto race = SmallRace();
  telemetry::StreamIngestor once, twice;
  for (const auto& rec : race.records()) ASSERT_TRUE(once.push(rec).ok());
  for (const auto& rec : race.records()) {
    ASSERT_TRUE(twice.push(rec).ok());
    EXPECT_TRUE(twice.push(rec).ok());  // immediate replay: OK but dropped
  }
  auto a = once.finalize(race.info());
  auto b = twice.finalize(race.info());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().to_csv().to_string(), b.value().to_csv().to_string());
  EXPECT_EQ(twice.counters().duplicates, race.records().size());
  EXPECT_EQ(twice.counters().accepted, once.counters().accepted);
}

TEST(StreamIngestor, ReorderWithinWindowHeals) {
  const auto race = SmallRace();
  // Shuffle the stream locally: reverse disjoint blocks of 7 records. Every
  // record stays within a few positions of home — inside the lap window.
  auto shuffled = race.records();
  for (std::size_t i = 0; i + 7 <= shuffled.size(); i += 7) {
    std::reverse(shuffled.begin() + static_cast<std::ptrdiff_t>(i),
                 shuffled.begin() + static_cast<std::ptrdiff_t>(i + 7));
  }
  telemetry::StreamIngestor ing;
  for (const auto& rec : shuffled) EXPECT_TRUE(ing.push(rec).ok());
  auto out = ing.finalize(race.info());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().to_csv().to_string(), race.to_csv().to_string());
  EXPECT_EQ(ing.counters().quarantined(), 0u);
}

TEST(StreamIngestor, ShortGapIsInterpolatedLongGapTruncates) {
  telemetry::IngestConfig cfg;
  cfg.max_gap_laps = 3;
  // Car 1: laps 1..10 minus {4, 5} — a 2-lap gap, bridgeable.
  // Car 2: laps 1..10 minus {4, 5, 6, 7} — a 4-lap gap, unbridgeable.
  telemetry::StreamIngestor ing(cfg);
  for (int lap = 1; lap <= 10; ++lap) {
    if (lap != 4 && lap != 5) {
      ASSERT_TRUE(
          ing.push(MakeRecord(1, lap, /*rank=*/lap <= 3 ? 2 : 8)).ok());
    }
    if (lap <= 3 || lap >= 8) {
      ASSERT_TRUE(ing.push(MakeRecord(2, lap)).ok());
    }
  }
  auto out = ing.finalize(telemetry::EventInfo{"Gap", 2019});
  ASSERT_TRUE(out.ok());
  const auto& log = out.value();

  const auto& car1 = log.car(1);
  ASSERT_EQ(car1.laps(), 10u);  // gap bridged
  // Interpolated ranks sit between the neighbours (2 at lap 3, 8 at lap 6).
  EXPECT_GE(car1.rank[3], 2.0);
  EXPECT_LE(car1.rank[3], 8.0);
  EXPECT_GE(car1.rank[4], car1.rank[3]);
  EXPECT_NEAR(ing.damage_fraction(1), 2.0 / 10.0, 1e-12);

  const auto& car2 = log.car(2);
  EXPECT_EQ(car2.laps(), 3u);  // truncated at the gap
  EXPECT_EQ(ing.last_observed_lap(2), 3);
  EXPECT_EQ(ing.counters().imputed, 2u);
  EXPECT_EQ(ing.counters().quarantined_gap, 3u);  // car 2 laps 8..10
}

// Regression: damage_fraction() used to count only imputed laps, so a car
// whose tail was quarantined behind an unbridgeable gap read as pristine
// (0.0) and sailed past the degradation ladder's damage threshold.
TEST(StreamIngestor, TruncatedTailCountsTowardDamageFraction) {
  telemetry::IngestConfig cfg;
  cfg.max_gap_laps = 3;
  telemetry::StreamIngestor ing(cfg);
  // Laps 1..10 arrive clean, then the feed blacks out for 10 laps (inside
  // the forward-jump plausibility bound) and resumes for 21..30.
  for (int lap = 1; lap <= 10; ++lap) {
    ASSERT_TRUE(ing.push(MakeRecord(4, lap)).ok());
  }
  for (int lap = 21; lap <= 30; ++lap) {
    ASSERT_TRUE(ing.push(MakeRecord(4, lap)).ok());
  }
  auto out = ing.finalize(telemetry::EventInfo{"Tail", 2019});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().car(4).laps(), 10u);  // truncated at the gap
  EXPECT_EQ(ing.counters().quarantined_gap, 10u);
  // 20 of the car's 30 observed-span laps (11..30) are not real telemetry.
  EXPECT_NEAR(ing.damage_fraction(4), 20.0 / 30.0, 1e-12);
}

TEST(StreamIngestor, LongLeadingGapDropsCar) {
  telemetry::StreamIngestor ing;
  for (int lap = 20; lap <= 25; ++lap) {
    ASSERT_TRUE(ing.push(MakeRecord(5, lap)).ok());
  }
  ASSERT_TRUE(ing.push(MakeRecord(6, 1)).ok());
  auto out = ing.finalize(telemetry::EventInfo{"Lead", 2019});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().car_ids(), std::vector<int>{6});
  EXPECT_EQ(ing.counters().trimmed_cars, 1u);
  EXPECT_EQ(ing.counters().quarantined_gap, 6u);
}

TEST(StreamIngestor, SchemaAndRangeViolationsAreQuarantined) {
  telemetry::IngestConfig cfg;
  cfg.expected_total_laps = 200;
  telemetry::StreamIngestor ing(cfg);

  auto nan_time = MakeRecord(1, 1);
  nan_time.lap_time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ing.push(nan_time).code(), util::StatusCode::kCorruptData);

  EXPECT_EQ(ing.push(MakeRecord(1, 1, /*rank=*/0)).code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(ing.push(MakeRecord(1, 1, /*rank=*/9999)).code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(ing.push(MakeRecord(1, 4001)).code(),
            util::StatusCode::kOutOfRange);  // lap > expected_total_laps
  auto negative = MakeRecord(1, 1);
  negative.lap_time = -negative.lap_time;
  EXPECT_EQ(ing.push(negative).code(), util::StatusCode::kOutOfRange);
  auto behind = MakeRecord(1, 1);
  behind.time_behind_leader = -1.0;
  EXPECT_EQ(ing.push(behind).code(), util::StatusCode::kOutOfRange);

  EXPECT_EQ(ing.counters().quarantined_schema, 1u);
  EXPECT_EQ(ing.counters().quarantined_range, 5u);
  EXPECT_EQ(ing.counters().accepted, 0u);
}

TEST(StreamIngestor, MonotonicityGuards) {
  telemetry::StreamIngestor ing;  // reorder_window 8, max_lap_jump 32

  // A first record with an implausible lap must not poison the frontier.
  EXPECT_EQ(ing.push(MakeRecord(3, 500)).code(),
            util::StatusCode::kOutOfRange);
  ASSERT_TRUE(ing.push(MakeRecord(3, 1)).ok());

  // Establish frontier at 30, then violate both window edges.
  for (int lap = 2; lap <= 30; ++lap) {
    ASSERT_TRUE(ing.push(MakeRecord(3, lap)).ok());
  }
  EXPECT_EQ(ing.push(MakeRecord(3, 10)).code(),
            util::StatusCode::kOutOfRange);  // 20 laps behind > window 8
  EXPECT_EQ(ing.push(MakeRecord(3, 100)).code(),
            util::StatusCode::kOutOfRange);  // 70 ahead > jump 32
  EXPECT_TRUE(ing.push(MakeRecord(3, 25)).ok());  // within the window
  EXPECT_EQ(ing.counters().quarantined_monotonic, 3u);
  EXPECT_EQ(ing.counters().duplicates, 1u);  // lap 25 already accepted
}

TEST(StreamIngestor, PushAfterFinalizeFails) {
  telemetry::StreamIngestor ing;
  ASSERT_TRUE(ing.push(MakeRecord(1, 1)).ok());
  ASSERT_TRUE(ing.finalize(telemetry::EventInfo{"X", 2019}).ok());
  EXPECT_EQ(ing.push(MakeRecord(1, 2)).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(ing.finalize(telemetry::EventInfo{"X", 2019}).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(StreamIngestor, EmptyStreamIsUnavailable) {
  telemetry::StreamIngestor ing;
  auto out = ing.finalize(telemetry::EventInfo{"Empty", 2019});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), util::StatusCode::kUnavailable);
}

TEST(StreamIngestor, BeginRaceResetsPerRaceCountersAndFinalizedLatch) {
  // Regression: a session-long ingestor (the online loop keeps one alive
  // across races) used to carry quarantine counters and the finalized latch
  // from race to race, so race N's damage was billed to race N+1 and the
  // second race could not be ingested at all. begin_race() re-arms the
  // ingestor; counters() is per-race, session_counters() is the lifetime
  // total.
  telemetry::StreamIngestor ing;
  // Race 1: two good records, one schema-corrupt one.
  ASSERT_TRUE(ing.push(MakeRecord(1, 1)).ok());
  ASSERT_TRUE(ing.push(MakeRecord(1, 2)).ok());
  auto nan_rec = MakeRecord(1, 3);
  nan_rec.lap_time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ing.push(nan_rec).ok());
  ASSERT_TRUE(ing.finalize(telemetry::EventInfo{"A", 2019}).ok());
  EXPECT_EQ(ing.counters().accepted, 2u);
  EXPECT_EQ(ing.counters().quarantined_schema, 1u);

  // Without begin_race the ingestor is spent (PushAfterFinalizeFails); with
  // it, the next race starts from a zeroed per-race ledger.
  ing.begin_race();
  EXPECT_EQ(ing.counters().accepted, 0u);
  EXPECT_EQ(ing.counters().quarantined(), 0u);
  ASSERT_TRUE(ing.push(MakeRecord(2, 1)).ok());
  ASSERT_TRUE(ing.push(MakeRecord(2, 2)).ok());
  auto second = ing.finalize(telemetry::EventInfo{"B", 2019});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ing.counters().accepted, 2u);
  EXPECT_EQ(ing.counters().quarantined_schema, 0u)
      << "race A's quarantine leaked into race B's damage report";

  // The session ledger still remembers both races.
  const auto session = ing.session_counters();
  EXPECT_EQ(session.accepted, 4u);
  EXPECT_EQ(session.quarantined_schema, 1u);

  // Damage metadata is also per-race: race B never saw car 1.
  EXPECT_EQ(ing.last_observed_lap(1), 0);
}

// ---------------------------------------------------------------------------
// End-to-end pipeline properties
// ---------------------------------------------------------------------------

TEST(FaultPipeline, ZeroFaultRateIsByteIdenticalEndToEnd) {
  const auto race = SmallRace();
  sim::FaultInjector feed(race.records(), sim::FaultProfile{}, 1);
  telemetry::IngestConfig cfg;
  cfg.expected_total_laps = race.num_laps();
  telemetry::StreamIngestor ing(cfg);
  while (!feed.done()) {
    if (auto rec = feed.next()) ASSERT_TRUE(ing.push(*rec).ok());
  }
  auto out = ing.finalize(race.info());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().to_csv().to_string(), race.to_csv().to_string());
  EXPECT_EQ(ing.counters().quarantined(), 0u);
  EXPECT_EQ(ing.counters().imputed, 0u);
}

TEST(FaultPipeline, AcceptanceProfileSurvivesWithAccounting) {
  // The ISSUE acceptance scenario: 5% drop + 2% corruption + reorder depth 3
  // must produce a usable log with nonzero quarantine counters, no crash.
  const auto race = SmallRace();
  sim::FaultProfile p;
  p.drop_rate = 0.05;
  p.corrupt_rate = 0.02;
  p.reorder_depth = 3;
  sim::FaultInjector feed(race.records(), p, 77);
  telemetry::IngestConfig cfg;
  cfg.expected_total_laps = race.num_laps();
  telemetry::StreamIngestor ing(cfg);
  while (!feed.done()) {
    if (auto rec = feed.next()) (void)ing.push(*rec);
  }
  auto out = ing.finalize(race.info());
  ASSERT_TRUE(out.ok());
  const auto& log = out.value();
  EXPECT_GT(log.num_laps(), 0);
  EXPECT_FALSE(log.car_ids().empty());
  EXPECT_GT(ing.counters().quarantined(), 0u);
  EXPECT_GT(ing.counters().imputed, 0u);
  // Whatever survived must satisfy the RaceLog invariants (contiguous laps
  // from 1) — RaceLog's constructor throws otherwise, so ok() proves it.
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

/// Toy partitionable forecaster: fills every sample with `value`. Optional
/// per-partition sleep (to trip deadlines) and optional throwing.
class ConstForecaster : public core::RaceForecaster,
                        public core::PartitionableForecaster {
 public:
  explicit ConstForecaster(double value, int sleep_ms = 0,
                           bool throw_in_partition = false)
      : value_(value),
        sleep_ms_(sleep_ms),
        throw_in_partition_(throw_in_partition) {}

  std::string name() const override { return "const"; }

  core::RaceSamples forecast(const telemetry::RaceLog& race, int origin_lap,
                             int horizon, int num_samples,
                             util::Rng& rng) override {
    prepare(race);
    const std::uint64_t base = rng();
    return forecast_partition(race, origin_lap, horizon, num_samples, base,
                              forecast_cars(race, origin_lap));
  }

  void prepare(const telemetry::RaceLog&) override {}

  std::vector<int> forecast_cars(const telemetry::RaceLog& race,
                                 int origin_lap) override {
    std::vector<int> cars;
    for (int id : race.car_ids()) {
      if (race.car(id).laps() >= static_cast<std::size_t>(origin_lap)) {
        cars.push_back(id);
      }
    }
    return cars;
  }

  core::RaceSamples forecast_partition(const telemetry::RaceLog&, int,
                                       int horizon, int num_samples,
                                       std::uint64_t,
                                       std::span<const int> cars) override {
    if (throw_in_partition_) throw std::runtime_error("model exploded");
    if (sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    core::RaceSamples out;
    for (int car : cars) {
      tensor::Matrix m(static_cast<std::size_t>(num_samples),
                       static_cast<std::size_t>(horizon));
      for (double& v : m.flat()) v = value_;
      out.emplace(car, std::move(m));
    }
    return out;
  }

 private:
  double value_;
  int sleep_ms_;
  bool throw_in_partition_;
};

class DegradationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(SmallRace());
  }
  static void TearDownTestSuite() { delete race_; }

  static double CarValue(const core::RaceSamples& out, int car) {
    return out.at(car)(0, 0);
  }

  static telemetry::RaceLog* race_;
};
telemetry::RaceLog* DegradationTest::race_ = nullptr;

TEST_F(DegradationTest, DamagedSeriesRouteToFallback) {
  ConstForecaster primary(42.0);
  core::ParallelForecastEngine engine(primary, 2);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<ConstForecaster>(7.0);
  policy.series_damaged = [](int car_id, int) { return car_id % 2 == 1; };
  ASSERT_TRUE(engine.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng(3);
  const auto out = engine.forecast(*race_, 30, 5, 4, rng);
  ASSERT_FALSE(out.empty());
  std::uint64_t odd = 0, even = 0;
  for (const auto& [car, m] : out) {
    (void)m;
    if (car % 2 == 1) {
      EXPECT_EQ(CarValue(out, car), 7.0) << "car " << car;
      ++odd;
    } else {
      EXPECT_EQ(CarValue(out, car), 42.0) << "car " << car;
      ++even;
    }
  }
  const auto deg = engine.degradation();
  EXPECT_EQ(deg.damaged_fallback_cars, odd);
  EXPECT_EQ(deg.full_cars, even);
  EXPECT_EQ(deg.fallback_cars(), odd);
  EXPECT_EQ(deg.task_failures, 0u);
}

// Regression for the documented armed-active winner-line nondeterminism:
// CurRank (a point forecaster) returns ONE row per rescued car, while
// primary cars carry num_samples rows. The engine used to merge the 1-row
// matrices verbatim, and sort_to_ranks — which sizes its sample loop from
// the first car's matrix — then read past the short matrices: unchecked
// out-of-bounds heap reads in release builds, so the winner line of
// examples/live_forecast changed run to run whenever tier 1 was active.
// The fix broadcasts fallback matrices to num_samples rows in the merge.
TEST_F(DegradationTest, PartialFallbackOutputHasUniformSampleRows) {
  ConstForecaster primary(42.0);
  core::ParallelForecastEngine engine(primary, 2);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<core::CurRankForecaster>();
  policy.series_damaged = [](int car_id, int) { return car_id % 2 == 1; };
  ASSERT_TRUE(engine.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng(21);
  const int kSamples = 6, kHorizon = 5;
  const auto out = engine.forecast(*race_, 30, kHorizon, kSamples, rng);
  ASSERT_FALSE(out.empty());
  bool saw_fallback_car = false;
  for (const auto& [car, m] : out) {
    // The mixed-tier merge must hand downstream consumers a shape-uniform
    // map: every car at (num_samples x horizon), fallback cars included.
    ASSERT_EQ(m.rows(), static_cast<std::size_t>(kSamples)) << "car " << car;
    ASSERT_EQ(m.cols(), static_cast<std::size_t>(kHorizon)) << "car " << car;
    if (car % 2 == 1) {
      saw_fallback_car = true;
      // Broadcast rows replicate the point forecast byte-for-byte.
      for (std::size_t s = 1; s < m.rows(); ++s) {
        for (std::size_t h = 0; h < m.cols(); ++h) {
          EXPECT_TRUE(SameBits(m(s, h), m(0, h)))
              << "car " << car << " sample " << s << " lap " << h;
        }
      }
    }
  }
  ASSERT_TRUE(saw_fallback_car);

  // Downstream rank conversion must be well-defined and reproducible on
  // the mixed-tier output (it crashed-silently before the fix).
  const auto ranks_a = core::sort_to_ranks(out);
  const auto ranks_b = core::sort_to_ranks(out);
  for (const auto& [car, m] : ranks_a) {
    const auto& n = ranks_b.at(car);
    ASSERT_EQ(std::memcmp(m.flat().data(), n.flat().data(),
                          m.flat().size() * sizeof(double)),
              0)
        << "car " << car;
  }
}

TEST_F(DegradationTest, ArmedButIdlePolicyIsBitIdentical) {
  // With a fallback configured but nothing damaged and no deadline, the
  // ladder must not perturb the engine's output or rng protocol.
  core::CurRankForecaster a_model, b_model;
  core::ParallelForecastEngine plain(a_model, 2);
  core::ParallelForecastEngine armed(b_model, 2);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<ConstForecaster>(7.0);
  policy.series_damaged = [](int, int) { return false; };
  ASSERT_TRUE(armed.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng_a(11), rng_b(11);
  const auto a = plain.forecast(*race_, 30, 5, 9, rng_a);
  const auto b = armed.forecast(*race_, 30, 5, 9, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [car, m] : a) {
    const auto& n = b.at(car);
    ASSERT_EQ(m.rows(), n.rows());
    ASSERT_EQ(m.cols(), n.cols());
    EXPECT_EQ(std::memcmp(m.flat().data(), n.flat().data(),
                          m.flat().size() * sizeof(double)),
              0)
        << "car " << car;
  }
  EXPECT_EQ(rng_a(), rng_b());
  EXPECT_EQ(armed.degradation().fallback_cars(), 0u);
}

TEST_F(DegradationTest, DeadlineOverrunFallsBackAndStillServesEveryCar) {
  ConstForecaster primary(42.0, /*sleep_ms=*/30);
  core::ParallelForecastEngine engine(primary, 2, /*max_cars_per_task=*/4);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.deadline_seconds = 1e-4;  // far below one partition's sleep
  policy.fallback = std::make_shared<ConstForecaster>(7.0);
  ASSERT_TRUE(engine.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng(5);
  const auto out = engine.forecast(*race_, 30, 5, 4, rng);

  // Every running car is served — by the primary or by the fallback.
  ConstForecaster probe(0.0);
  const auto expected = probe.forecast_cars(*race_, 30);
  ASSERT_EQ(out.size(), expected.size());
  for (int car : expected) EXPECT_TRUE(out.count(car)) << "car " << car;

  const auto deg = engine.degradation();
  EXPECT_GE(deg.deadline_hits, 1u);
  EXPECT_GT(deg.deadline_fallback_cars, 0u);
  EXPECT_EQ(deg.full_cars + deg.fallback_cars(), expected.size());
}

// Regression: a block whose wait timed out used to be counted as full_cars
// when the blocking future drain let it finish anyway — a forecast could
// report deadline_hits > 0 with zero deadline_fallback_cars, and serve the
// late primary result past its deadline. One worker and one block make the
// race deterministic: the wait must time out (the only task is still
// sleeping), yet the drain always sees a completed result.
TEST_F(DegradationTest, TimedOutBlockIsNotCountedAsFullEvenIfItFinishes) {
  ConstForecaster primary(42.0, /*sleep_ms=*/50);
  core::ParallelForecastEngine engine(primary, /*threads=*/1,
                                      /*max_cars_per_task=*/1024);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.deadline_seconds = 1e-4;  // far below the single block's sleep
  policy.fallback = std::make_shared<ConstForecaster>(7.0);
  ASSERT_TRUE(engine.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng(5);
  const auto out = engine.forecast(*race_, 30, 5, 4, rng);

  ConstForecaster probe(0.0);
  const auto expected = probe.forecast_cars(*race_, 30);
  ASSERT_EQ(out.size(), expected.size());
  // Every car must carry the fallback's value: the timed-out primary
  // result is discarded even though it completed during the drain.
  for (int car : expected) {
    EXPECT_EQ(CarValue(out, car), 7.0) << "car " << car;
  }
  const auto deg = engine.degradation();
  EXPECT_EQ(deg.deadline_hits, 1u);
  EXPECT_EQ(deg.full_cars, 0u);
  EXPECT_EQ(deg.deadline_fallback_cars, expected.size());
}

TEST_F(DegradationTest, TaskExceptionFallsBackWhenConfigured) {
  ConstForecaster primary(42.0, 0, /*throw_in_partition=*/true);
  core::ParallelForecastEngine engine(primary, 2);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<ConstForecaster>(7.0);
  ASSERT_TRUE(engine.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng(5);
  const auto out = engine.forecast(*race_, 30, 5, 4, rng);
  ASSERT_FALSE(out.empty());
  for (const auto& [car, m] : out) {
    (void)m;
    EXPECT_EQ(CarValue(out, car), 7.0) << "car " << car;
  }
  const auto deg = engine.degradation();
  EXPECT_GE(deg.task_failures, 1u);
  EXPECT_EQ(deg.error_fallback_cars, out.size());
  EXPECT_EQ(deg.full_cars, 0u);
}

TEST_F(DegradationTest, TaskExceptionWithoutFallbackPropagates) {
  ConstForecaster primary(42.0, 0, /*throw_in_partition=*/true);
  core::ParallelForecastEngine engine(primary, 2);
  util::Rng rng(5);
  EXPECT_THROW((void)engine.forecast(*race_, 30, 5, 4, rng),
               std::runtime_error);
}

TEST_F(DegradationTest, NonPartitionableFallbackIsRejected) {
  ConstForecaster primary(42.0);
  core::ParallelForecastEngine engine(primary, 2);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<core::ArimaForecaster>();
  // ArimaForecaster IS partitionable; use a wrapper that is not.
  class PlainForecaster : public core::RaceForecaster {
   public:
    std::string name() const override { return "plain"; }
    core::RaceSamples forecast(const telemetry::RaceLog&, int, int, int,
                               util::Rng&) override {
      return {};
    }
  };
  policy.fallback = std::make_shared<PlainForecaster>();
  const auto st = engine.set_degradation_policy(std::move(policy));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
}

// A negative or NaN deadline would make every `deadline > 0.0` comparison
// in the forecast path false — silently disabling the deadline tier while
// the caller believes it is armed. The setter must reject such policies
// and leave the previously armed policy in force.
TEST_F(DegradationTest, InvalidDeadlineIsRejectedNotSilentlyDisabled) {
  ConstForecaster primary(42.0, /*sleep_ms=*/30);
  core::ParallelForecastEngine engine(primary, 2);

  for (const double bad :
       {-1.0, -1e-9, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    core::ParallelForecastEngine::DegradationPolicy policy;
    policy.deadline_seconds = bad;
    policy.fallback = std::make_shared<ConstForecaster>(7.0);
    const auto st = engine.set_degradation_policy(std::move(policy));
    EXPECT_FALSE(st.ok()) << "deadline " << bad << " accepted";
    EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  }

  // A rejected policy must not clobber a previously armed valid one: the
  // deadline tier armed below still fires after the failed updates above.
  {
    core::ParallelForecastEngine::DegradationPolicy policy;
    policy.deadline_seconds = 1e-4;  // far below one partition's sleep
    policy.fallback = std::make_shared<ConstForecaster>(7.0);
    ASSERT_TRUE(engine.set_degradation_policy(std::move(policy)).ok());
  }
  {
    core::ParallelForecastEngine::DegradationPolicy policy;
    policy.deadline_seconds = std::numeric_limits<double>::quiet_NaN();
    policy.fallback = std::make_shared<ConstForecaster>(7.0);
    EXPECT_FALSE(engine.set_degradation_policy(std::move(policy)).ok());
  }
  util::Rng rng(5);
  const auto out = engine.forecast(*race_, 30, 5, 4, rng);
  ASSERT_FALSE(out.empty());
  EXPECT_GT(engine.degradation().deadline_hits, 0u)
      << "armed deadline tier was lost after a rejected policy update";
}

TEST_F(DegradationTest, GlobalCountersMirrorEngineTallies) {
  core::DegradationCounters::instance().reset();
  ConstForecaster primary(42.0);
  core::ParallelForecastEngine engine(primary, 2);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<ConstForecaster>(7.0);
  policy.series_damaged = [](int car_id, int) { return car_id % 3 == 0; };
  ASSERT_TRUE(engine.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng(8);
  (void)engine.forecast(*race_, 30, 5, 4, rng);
  const auto deg = engine.degradation();
  const auto& global = core::DegradationCounters::instance();
  EXPECT_EQ(global.full_cars(), deg.full_cars);
  EXPECT_EQ(global.damaged_fallback_cars(), deg.damaged_fallback_cars);
  EXPECT_EQ(global.fallback_cars(), deg.fallback_cars());
  EXPECT_EQ(global.task_failures(), 0u);
}

// ---------------------------------------------------------------------------
// WireFaultInjector: the serving path's transport adversary
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> test_frame(std::size_t n, std::uint8_t fill) {
  std::vector<std::uint8_t> frame(n);
  for (std::size_t i = 0; i < n; ++i) {
    frame[i] = static_cast<std::uint8_t>(fill + i);
  }
  return frame;
}

TEST(WireFaultInjector, ZeroProfileIsByteIdenticalPassthrough) {
  sim::WireFaultInjector injector({}, 1234);
  for (int i = 0; i < 500; ++i) {
    const auto frame = test_frame(1 + (i % 64), static_cast<std::uint8_t>(i));
    const auto out = injector.apply(frame);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, frame);
    EXPECT_EQ(injector.stall_before_send_ms(), 0);
  }
  const auto& c = injector.counters();
  EXPECT_EQ(c.frames, 500u);
  EXPECT_EQ(c.delivered, 500u);
  EXPECT_EQ(c.dropped + c.truncated + c.corrupted + c.stalls, 0u);
}

TEST(WireFaultInjector, SameSeedSameMangling) {
  sim::WireFaultProfile profile;
  profile.drop_rate = 0.2;
  profile.truncate_rate = 0.2;
  profile.corrupt_rate = 0.2;
  profile.stall_rate = 0.1;
  sim::WireFaultInjector a(profile, 7), b(profile, 7);
  for (int i = 0; i < 300; ++i) {
    const auto frame = test_frame(32, static_cast<std::uint8_t>(i));
    const auto out_a = a.apply(frame);
    const auto out_b = b.apply(frame);
    ASSERT_EQ(out_a.has_value(), out_b.has_value());
    if (out_a) EXPECT_EQ(*out_a, *out_b);
    EXPECT_EQ(a.stall_before_send_ms(), b.stall_before_send_ms());
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_EQ(a.counters().truncated, b.counters().truncated);
  EXPECT_EQ(a.counters().corrupted, b.counters().corrupted);
}

TEST(WireFaultInjector, TruncationKeepsAtLeastOneByteAndNeverAll) {
  sim::WireFaultProfile profile;
  profile.truncate_rate = 1.0;
  sim::WireFaultInjector injector(profile, 3);
  for (int i = 0; i < 200; ++i) {
    const auto frame = test_frame(40, 0);
    const auto out = injector.apply(frame);
    ASSERT_TRUE(out.has_value());
    EXPECT_GE(out->size(), 1u);
    EXPECT_LT(out->size(), frame.size());
    // The surviving prefix is untouched — truncation, not corruption.
    EXPECT_TRUE(std::equal(out->begin(), out->end(), frame.begin()));
  }
  EXPECT_EQ(injector.counters().truncated, 200u);
  EXPECT_EQ(injector.counters().delivered, 200u);
}

TEST(WireFaultInjector, CorruptionFlipsExactlyOneBit) {
  sim::WireFaultProfile profile;
  profile.corrupt_rate = 1.0;
  sim::WireFaultInjector injector(profile, 11);
  for (int i = 0; i < 200; ++i) {
    const auto frame = test_frame(24, static_cast<std::uint8_t>(i));
    const auto out = injector.apply(frame);
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->size(), frame.size());
    int bits_flipped = 0;
    for (std::size_t j = 0; j < frame.size(); ++j) {
      bits_flipped += __builtin_popcount((*out)[j] ^ frame[j]);
    }
    EXPECT_EQ(bits_flipped, 1);
  }
  EXPECT_EQ(injector.counters().corrupted, 200u);
}

TEST(WireFaultInjector, CountersAccountForEveryFrame) {
  sim::WireFaultProfile profile;
  profile.drop_rate = 0.3;
  profile.truncate_rate = 0.2;
  profile.corrupt_rate = 0.2;
  sim::WireFaultInjector injector(profile, 21);
  for (int i = 0; i < 1000; ++i) {
    (void)injector.apply(test_frame(16, static_cast<std::uint8_t>(i)));
  }
  const auto& c = injector.counters();
  EXPECT_EQ(c.frames, 1000u);
  EXPECT_EQ(c.delivered + c.dropped, 1000u);
  EXPECT_GT(c.dropped, 0u);
  EXPECT_GT(c.truncated, 0u);
  EXPECT_GT(c.corrupted, 0u);
  // A frame is truncated OR corrupted, never both (one fault per frame).
  EXPECT_LE(c.truncated + c.corrupted, c.delivered);
}

// Artifact corruption "mid-swap": the candidate file is damaged between
// being written by the trainer and being staged by the registry — the
// window the v2 checksum exists for. The swap must reject, the active
// model must keep serving bit-identical forecasts, and a later probation
// failure must still roll back cleanly.
TEST(WireFaultInjector, ArtifactCorruptionMidSwapIsContainedAndRollbackFires) {
  const auto race =
      sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest});
  const std::string good = "/tmp/ranknet_fault_swap_good.bin";
  const std::string cand = "/tmp/ranknet_fault_swap_cand.bin";
  serve::AffineRankModel::save_artifact(good, 1.0, 0.0);
  serve::AffineRankModel::save_artifact(cand, 1.2, 0.5);

  serve::RegistryConfig cfg;
  cfg.gate.probe_origin_lap = 30;
  cfg.gate.probe_horizon = 5;
  cfg.gate.probe_num_samples = 4;
  cfg.gate.max_prediction_failure_rate = 1.0;  // probation is under test
  serve::ModelRegistry registry(
      [](const std::string& path)
          -> util::Result<std::shared_ptr<core::RaceForecaster>> {
        auto model = std::make_shared<serve::AffineRankModel>();
        if (auto st = model->load_artifact(path); !st.ok()) return st;
        return std::shared_ptr<core::RaceForecaster>(std::move(model));
      },
      cfg);
  registry.set_probe_race(race);
  ASSERT_TRUE(registry.init(good).ok());

  auto serve_bytes = [&race, &registry] {
    util::Rng rng(9);
    const auto samples =
        registry.active()->engine->forecast(race, 30, 5, 4, rng);
    std::vector<double> flat;
    for (const auto& [car, m] : samples) {
      for (double v : m.flat()) flat.push_back(v);
    }
    return flat;
  };
  const auto baseline = serve_bytes();

  // Mangle the candidate's bytes with the same seeded adversary the wire
  // tests use — a bit flip and a truncation, applied to the file.
  std::vector<char> clean;
  {
    std::ifstream in(cand, std::ios::binary);
    clean.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  sim::WireFaultProfile corrupt_only;
  corrupt_only.corrupt_rate = 1.0;
  sim::WireFaultInjector injector(corrupt_only, 5);
  const auto mangled = injector.apply(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(clean.data()), clean.size()));
  ASSERT_TRUE(mangled.has_value());
  for (const auto& bytes :
       {std::vector<char>(mangled->begin(), mangled->end()),
        std::vector<char>(clean.begin(),
                          clean.begin() + static_cast<std::ptrdiff_t>(
                                              clean.size() / 2))}) {
    std::ofstream out(cand, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    const auto outcome = registry.swap(cand);
    EXPECT_EQ(outcome.action, serve::wire::SwapAction::kRejected);
    EXPECT_EQ(registry.active_version(), 1u);
    const auto now = serve_bytes();
    ASSERT_EQ(now.size(), baseline.size());
    EXPECT_EQ(std::memcmp(now.data(), baseline.data(),
                          now.size() * sizeof(double)),
              0);
  }

  // Healthy candidate promotes; a probation failure rolls straight back.
  {
    std::ofstream out(cand, std::ios::binary | std::ios::trunc);
    out.write(clean.data(), static_cast<std::streamsize>(clean.size()));
  }
  ASSERT_EQ(registry.swap(cand).action, serve::wire::SwapAction::kPromoted);
  ASSERT_EQ(registry.active_version(), 2u);
  EXPECT_TRUE(registry.record_serving_result(2, /*ok=*/false));
  EXPECT_EQ(registry.active_version(), 1u);
  EXPECT_EQ(std::memcmp(serve_bytes().data(), baseline.data(),
                        baseline.size() * sizeof(double)),
            0) << "post-rollback serving differs from the original model";
}

TEST(DegradationCountersTest, WorkspaceRecordsAccumulateAndReset) {
  auto& c = core::DegradationCounters::instance();
  c.reset();
  c.record_workspace(5, 4, 2);
  c.record_workspace(1, 1, 0);
  EXPECT_EQ(c.workspace_epochs(), 6u);
  EXPECT_EQ(c.workspace_reused_epochs(), 5u);
  EXPECT_EQ(c.workspace_block_allocs(), 2u);
  c.reset();
  EXPECT_EQ(c.workspace_epochs(), 0u);
  EXPECT_EQ(c.workspace_reused_epochs(), 0u);
  EXPECT_EQ(c.workspace_block_allocs(), 0u);
}

}  // namespace

// Differential harness for the dispatched SIMD microkernels
// (tensor/simd_kernels.hpp).
//
// Three layers of guarantees, from strongest to weakest:
//   1. WITHIN the avx2 variant: bit-identity. Fused kernels must equal the
//      staged avx2 sequence byte-for-byte, batched rows must equal the same
//      rows computed alone, forecasts must be byte-stable run-to-run and
//      across engine thread counts.
//   2. ACROSS variants (scalar vs avx2): per-element ULP bounds on every
//      microkernel, and an end-to-end forecast MAE drift bound.
//   3. DISPATCH plumbing: RANKNET_KERNEL-style overrides select the right
//      table, unknown values fail fast with util::Status, and the
//      per-variant obs counters prove which variant actually ran.
//
// Every fixture restores the entry variant on teardown so test order never
// leaks a variant into unrelated suites.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/parallel_engine.hpp"
#include "core/ranknet.hpp"
#include "nn/inference.hpp"
#include "obs/metrics.hpp"
#include "simulator/season.hpp"
#include "tensor/kernels.hpp"
#include "tensor/simd_kernels.hpp"
#include "tensor/workspace.hpp"
#include "util/rng.hpp"

namespace {

using namespace ranknet;
namespace tk = tensor::kernels;

// ---- ULP machinery -------------------------------------------------------

/// Monotone mapping of doubles onto an unsigned line so ULP distance is a
/// subtraction. NaN/Inf never count as close.
std::uint64_t ulp_key(double x) {
  const auto u = std::bit_cast<std::uint64_t>(x);
  constexpr std::uint64_t kSign = 0x8000000000000000ull;
  return (u & kSign) ? kSign - (u & ~kSign) : u + kSign;
}

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t ka = ulp_key(a), kb = ulp_key(b);
  return ka > kb ? ka - kb : kb - ka;
}

::testing::AssertionResult UlpClose(const std::vector<double>& a,
                                    const std::vector<double>& b,
                                    std::uint64_t bound) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t d = ulp_distance(a[i], b[i]);
    if (d > bound) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i] << " is "
             << d << " ulps apart (bound " << bound << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitEqual(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i]
             << " differ in bits";
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<double> random_vec(std::size_t n, util::Rng& rng, double lo = -2.0,
                               double hi = 2.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = lo + (hi - lo) * rng.uniform();
  return v;
}

// Cross-variant bounds. The avx2 GEMM keeps the scalar accumulation order
// (strictly sequential along k) and the 4-lane exp uses the same
// minimax-polynomial algorithm as the scalar code, so observed drift is
// zero-to-a-few ULP; the bounds leave headroom for contraction differences
// on other compilers without ever letting a structural bug (wrong element,
// tail overrun) through.
constexpr std::uint64_t kGemmUlp = 64;
constexpr std::uint64_t kPointwiseUlp = 8;
constexpr std::uint64_t kLstmUlp = 512;  // sigmoid/tanh cascade per step

// ---- fixture: save/restore the active variant ----------------------------

class KernelVariants : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = tk::active_variant();
    if (!tk::cpu_supports(tk::Variant::kAvx2)) {
      GTEST_SKIP() << "CPU lacks AVX2+FMA; differential tests skipped";
    }
  }
  void TearDown() override {
    if (tk::cpu_supports(saved_)) {
      ASSERT_TRUE(tk::set_variant(saved_).ok());
    }
  }
  tk::Variant saved_ = tk::Variant::kScalar;
};

// ---- dispatch plumbing ---------------------------------------------------

TEST(KernelDispatch, ParseVariantRoundTrips) {
  const auto s = tk::parse_variant("scalar");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), tk::Variant::kScalar);
  EXPECT_STREQ(tk::variant_name(s.value()), "scalar");

  const auto a = tk::parse_variant("avx2");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), tk::Variant::kAvx2);
  EXPECT_STREQ(tk::variant_name(a.value()), "avx2");
}

TEST(KernelDispatch, UnknownVariantFailsFast) {
  const auto r = tk::parse_variant("sse9");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);

  const tk::Variant before = tk::active_variant();
  const util::Status st = tk::apply_env_override("bogus");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  // A rejected override must not half-switch the table.
  EXPECT_EQ(tk::active_variant(), before);
}

TEST(KernelDispatch, TableReportsItsVariant) {
  EXPECT_EQ(tk::table(tk::Variant::kScalar).variant, tk::Variant::kScalar);
  EXPECT_EQ(tk::table(tk::Variant::kAvx2).variant, tk::Variant::kAvx2);
  // The scalar table keeps the fused entries null so the byte-frozen staged
  // reference path in kernels.cpp keeps running (golden-file contract).
  EXPECT_EQ(tk::table(tk::Variant::kScalar).lstm_gates, nullptr);
  EXPECT_EQ(tk::table(tk::Variant::kScalar).dense_epilogue, nullptr);
}

TEST_F(KernelVariants, EnvOverrideSelectsVariant) {
  // "" / unset mean "best supported" — avx2 on this CPU (SetUp skipped us
  // otherwise).
  ASSERT_TRUE(tk::apply_env_override(nullptr).ok());
  EXPECT_EQ(tk::active_variant(), tk::Variant::kAvx2);
  ASSERT_TRUE(tk::apply_env_override("scalar").ok());
  EXPECT_EQ(tk::active_variant(), tk::Variant::kScalar);
  ASSERT_TRUE(tk::apply_env_override("avx2").ok());
  EXPECT_EQ(tk::active_variant(), tk::Variant::kAvx2);
  ASSERT_TRUE(tk::apply_env_override("").ok());
  EXPECT_EQ(tk::active_variant(), tk::Variant::kAvx2);
}

TEST_F(KernelVariants, ScalarOverrideForcesFallbackProvenByCounters) {
  auto& reg = obs::Registry::instance();
  auto& scalar_calls = reg.counter("tensor.kernel.scalar.calls");
  auto& avx2_calls = reg.counter("tensor.kernel.avx2.calls");

  tensor::Matrix a(3, 4), b(4, 5), c(3, 5);
  util::Rng rng(11);
  for (auto& x : a.flat()) x = rng.uniform();
  for (auto& x : b.flat()) x = rng.uniform();

  ASSERT_TRUE(tk::set_variant(tk::Variant::kScalar).ok());
  const auto s0 = scalar_calls.value();
  const auto a0 = avx2_calls.value();
  tensor::gemm(1.0, a, false, b, false, 0.0, c);
  EXPECT_GT(scalar_calls.value(), s0) << "scalar override did not run scalar";
  EXPECT_EQ(avx2_calls.value(), a0) << "scalar override still ran avx2";
  EXPECT_EQ(static_cast<int>(reg.gauge("tensor.kernel.active_variant").value()),
            static_cast<int>(tk::Variant::kScalar));

  ASSERT_TRUE(tk::set_variant(tk::Variant::kAvx2).ok());
  const auto a1 = avx2_calls.value();
  const auto s1 = scalar_calls.value();
  tensor::gemm(1.0, a, false, b, false, 0.0, c);
  EXPECT_GT(avx2_calls.value(), a1);
  EXPECT_EQ(scalar_calls.value(), s1);
}

// ---- microkernel differentials: scalar vs avx2 ---------------------------

TEST_F(KernelVariants, GemmUlpEquivalenceOnRemainderShapes) {
  // Shapes chosen to exercise every tail: m covers partial 4-row blocks,
  // n covers full 8-lane panels, the 4-lane panel, and masked tails, k
  // covers partial unrolls. n == 1 exercises the avx2 GEMV fast path.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 3, 1},  {1, 8, 1},  {2, 8, 4},  {3, 5, 33}, {4, 16, 8},
                {5, 13, 9}, {7, 37, 12}, {8, 9, 5},  {6, 20, 1}, {13, 7, 21}};
  util::Rng rng(42);
  for (const auto& s : shapes) {
    const auto a = random_vec(s.m * s.k, rng);
    const auto b = random_vec(s.k * s.n, rng);
    const auto c_init = random_vec(s.m * s.n, rng);
    for (const auto& [alpha, beta] : {std::pair{1.0, 0.0}, {0.5, 1.0}}) {
      auto c_scalar = c_init, c_avx2 = c_init;
      tk::table(tk::Variant::kScalar)
          .gemm_nn(alpha, a.data(), b.data(), beta, c_scalar.data(), s.m, s.k,
                   s.n);
      tk::table(tk::Variant::kAvx2)
          .gemm_nn(alpha, a.data(), b.data(), beta, c_avx2.data(), s.m, s.k,
                   s.n);
      EXPECT_TRUE(UlpClose(c_scalar, c_avx2, kGemmUlp))
          << "gemm " << s.m << "x" << s.k << "x" << s.n << " alpha=" << alpha
          << " beta=" << beta;
    }
  }
}

TEST_F(KernelVariants, PointwiseUlpEquivalence) {
  util::Rng rng(7);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{7}, std::size_t{8},
                              std::size_t{13}, std::size_t{31}}) {
    // Cover the exp-clamp saturation region and signed zero, not just the
    // well-behaved middle.
    auto base = random_vec(n, rng, -60.0, 60.0);
    if (n >= 2) {
      base[0] = 0.0;
      base[1] = -0.0;
    }
    using PointwiseMember = void (*tk::Dispatch::*)(double*, std::size_t);
    for (const PointwiseMember fn :
         {&tk::Dispatch::sigmoid, &tk::Dispatch::tanh}) {
      auto vs = base, va = base;
      (tk::table(tk::Variant::kScalar).*fn)(vs.data(), vs.size());
      (tk::table(tk::Variant::kAvx2).*fn)(va.data(), va.size());
      EXPECT_TRUE(UlpClose(vs, va, kPointwiseUlp)) << "n=" << n;
    }
  }
}

TEST_F(KernelVariants, HadamardUlpEquivalence) {
  util::Rng rng(19);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{4}, std::size_t{7}, std::size_t{30}}) {
    const auto x = random_vec(n, rng);
    const auto y = random_vec(n, rng);
    const auto o_init = random_vec(n, rng);

    auto os = o_init, oa = o_init;
    tk::table(tk::Variant::kScalar).hadamard(x.data(), y.data(), os.data(), n);
    tk::table(tk::Variant::kAvx2).hadamard(x.data(), y.data(), oa.data(), n);
    // One IEEE multiply per element on both sides: exact.
    EXPECT_TRUE(BitEqual(os, oa)) << "hadamard n=" << n;

    os = o_init;
    oa = o_init;
    tk::table(tk::Variant::kScalar)
        .hadamard_add(x.data(), y.data(), os.data(), n);
    tk::table(tk::Variant::kAvx2)
        .hadamard_add(x.data(), y.data(), oa.data(), n);
    // mul+add vs FMA: at most one rounding apart.
    EXPECT_TRUE(UlpClose(os, oa, 1)) << "hadamard_add n=" << n;

    auto ms = random_vec(3 * n, rng);
    auto ma = ms;
    tk::table(tk::Variant::kScalar).add_bias_rows(ms.data(), x.data(), 3, n);
    tk::table(tk::Variant::kAvx2).add_bias_rows(ma.data(), x.data(), 3, n);
    EXPECT_TRUE(BitEqual(ms, ma)) << "add_bias_rows n=" << n;
  }
}

// ---- fused avx2 kernels vs the staged avx2 primitives --------------------

TEST_F(KernelVariants, FusedLstmGatesBitIdenticalToStagedAvx2) {
  const auto& avx2 = tk::table(tk::Variant::kAvx2);
  ASSERT_NE(avx2.lstm_gates, nullptr);
  util::Rng rng(23);
  for (const std::size_t hidden :
       {std::size_t{5}, std::size_t{13}, std::size_t{37}}) {
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      const auto gates = random_vec(batch * 4 * hidden, rng, -3.0, 3.0);
      const auto bias = random_vec(4 * hidden, rng);
      const auto c_init = random_vec(batch * hidden, rng);

      auto c_fused = c_init;
      std::vector<double> h_fused(batch * hidden);
      avx2.lstm_gates(gates.data(), bias.data(), c_fused.data(),
                      h_fused.data(), batch, hidden);

      // Staged reference built from the SAME avx2 primitives the fused
      // kernel claims to be equivalent to: per-gate contiguous buffers,
      // avx2 sigmoid/tanh, then the per-element fma(i, g, f*c) state
      // update. Lane-pure pointwise kernels make the gather irrelevant.
      auto c_staged = c_init;
      std::vector<double> h_staged(batch * hidden);
      std::vector<double> ib(hidden), fb(hidden), gb(hidden), ob(hidden),
          tc(hidden);
      for (std::size_t r = 0; r < batch; ++r) {
        const double* g_row = gates.data() + r * 4 * hidden;
        for (std::size_t j = 0; j < hidden; ++j) {
          ib[j] = g_row[j] + bias[j];
          fb[j] = g_row[hidden + j] + bias[hidden + j];
          gb[j] = g_row[2 * hidden + j] + bias[2 * hidden + j];
          ob[j] = g_row[3 * hidden + j] + bias[3 * hidden + j];
        }
        avx2.sigmoid(ib.data(), hidden);
        avx2.sigmoid(fb.data(), hidden);
        avx2.tanh(gb.data(), hidden);
        avx2.sigmoid(ob.data(), hidden);
        for (std::size_t j = 0; j < hidden; ++j) {
          double& c = c_staged[r * hidden + j];
          c = std::fma(ib[j], gb[j], fb[j] * c);
          tc[j] = c;
        }
        avx2.tanh(tc.data(), hidden);
        for (std::size_t j = 0; j < hidden; ++j) {
          h_staged[r * hidden + j] = ob[j] * tc[j];
        }
      }
      EXPECT_TRUE(BitEqual(c_fused, c_staged))
          << "c, H=" << hidden << " B=" << batch;
      EXPECT_TRUE(BitEqual(h_fused, h_staged))
          << "h, H=" << hidden << " B=" << batch;
    }
  }
}

TEST_F(KernelVariants, LstmCellStepUlpAcrossVariants) {
  // Full packed-GEMM + gate epilogue under each variant; hidden sizes are
  // deliberately not multiples of 8 (or 4) to stress the lane tails.
  util::Rng rng(31);
  for (const std::size_t hidden :
       {std::size_t{5}, std::size_t{13}, std::size_t{37}}) {
    const std::size_t batch = 7, in = 9;
    tensor::Workspace ws;
    ws.begin();
    auto xh = ws.take(batch, in + hidden);
    auto w = ws.take(in + hidden, 4 * hidden);
    for (std::size_t i = 0; i < batch * (in + hidden); ++i) {
      xh.data()[i] = rng.uniform() - 0.5;
    }
    for (std::size_t i = 0; i < (in + hidden) * 4 * hidden; ++i) {
      w.data()[i] = rng.uniform() - 0.5;
    }
    const auto bias = random_vec(4 * hidden, rng);
    const auto c_init = random_vec(batch * hidden, rng);

    std::vector<std::vector<double>> cs, hs;
    for (const auto v : {tk::Variant::kScalar, tk::Variant::kAvx2}) {
      ASSERT_TRUE(tk::set_variant(v).ok());
      auto c = ws.take(batch, hidden);
      auto h = ws.take(batch, hidden);
      std::memcpy(c.data(), c_init.data(), 8 * batch * hidden);
      tensor::LstmStepScratch scratch{
          ws.take(batch, 4 * hidden), ws.take(batch, 3 * hidden),
          ws.take(batch, hidden),     ws.take(batch, hidden),
          ws.take(batch, hidden),     ws.take(batch, hidden),
          ws.take(batch, hidden),     ws.take(batch, hidden)};
      tensor::lstm_cell_step(xh, w, bias, c, h, scratch);
      cs.emplace_back(c.data(), c.data() + batch * hidden);
      hs.emplace_back(h.data(), h.data() + batch * hidden);
    }
    EXPECT_TRUE(UlpClose(cs[0], cs[1], kLstmUlp)) << "c, H=" << hidden;
    EXPECT_TRUE(UlpClose(hs[0], hs[1], kLstmUlp)) << "h, H=" << hidden;
  }
}

TEST_F(KernelVariants, DenseAndGaussianHeadUlpAcrossVariants) {
  util::Rng rng(37);
  const std::size_t rows = 5, in = 13, out = 3;
  nn::Dense dense(in, out, rng, nn::Activation::kTanh, "difftest");
  nn::GaussianHead head(in, 1, rng, "difftest.head");
  tensor::Matrix x(rows, in);
  for (auto& v : x.flat()) v = rng.uniform() - 0.5;

  ASSERT_TRUE(tk::set_variant(tk::Variant::kScalar).ok());
  const auto ys = dense.forward_inference(x);
  const auto gs = head.forward_inference(x);
  ASSERT_TRUE(tk::set_variant(tk::Variant::kAvx2).ok());
  const auto ya = dense.forward_inference(x);
  const auto ga = head.forward_inference(x);

  auto flat = [](const tensor::Matrix& m) {
    return std::vector<double>(m.flat().begin(), m.flat().end());
  };
  EXPECT_TRUE(UlpClose(flat(ys), flat(ya), kLstmUlp));
  EXPECT_TRUE(UlpClose(flat(gs.mu), flat(ga.mu), kLstmUlp));
  EXPECT_TRUE(UlpClose(flat(gs.sigma), flat(ga.sigma), kLstmUlp));
}

// ---- batching degeneracy: K rows together ≡ each row alone ---------------

TEST_F(KernelVariants, BatchedRowsBitIdenticalToSingleRows) {
  // Row independence is what makes the engine's per-car partitioning (and
  // any K-sample batching) thread-count invariant: computing row r inside a
  // (7 x n) batch must give the same bits as computing it in a (1 x n) call.
  util::Rng rng(53);
  const std::size_t m = 7, k = 13, n = 9;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  for (const auto v : {tk::Variant::kScalar, tk::Variant::kAvx2}) {
    std::vector<double> c_batch(m * n, 0.0);
    tk::table(v).gemm_nn(1.0, a.data(), b.data(), 0.0, c_batch.data(), m, k,
                         n);
    for (std::size_t r = 0; r < m; ++r) {
      std::vector<double> c_row(n, 0.0);
      tk::table(v).gemm_nn(1.0, a.data() + r * k, b.data(), 0.0, c_row.data(),
                           1, k, n);
      const std::vector<double> batch_row(c_batch.begin() + r * n,
                                          c_batch.begin() + (r + 1) * n);
      EXPECT_TRUE(BitEqual(batch_row, c_row))
          << tk::variant_name(v) << " row " << r;
    }
  }
}

TEST_F(KernelVariants, SessionBatchOneBitIdenticalToBatchRow) {
  // K=1 degenerate batch ≡ the same sample inside a K=3 batch, per variant.
  util::Rng rng(61);
  nn::LstmLayer layer(6, 13, rng, "difftest.lstm");
  tensor::Matrix x3(3, 6);
  for (auto& v : x3.flat()) v = rng.uniform() - 0.5;

  for (const auto v : {tk::Variant::kScalar, tk::Variant::kAvx2}) {
    ASSERT_TRUE(tk::set_variant(v).ok());
    tensor::Workspace ws;
    ws.begin();
    nn::LstmInferenceSession s3(layer, 3, ws);
    nn::LstmInferenceSession s1(layer, 1, ws);
    s3.reset_state();
    s1.reset_state();
    for (int step = 0; step < 4; ++step) {
      s3.set_input(tensor::ConstMatrixView(x3));
      auto r = s1.x_row(0);
      for (std::size_t c = 0; c < 6; ++c) r[c] = x3(0, c);
      s3.step();
      s1.step();
    }
    for (std::size_t j = 0; j < 13; ++j) {
      EXPECT_EQ(s1.h()(0, j), s3.h()(0, j)) << tk::variant_name(v);
      EXPECT_EQ(s1.c()(0, j), s3.c()(0, j)) << tk::variant_name(v);
    }
  }
}

// ---- end-to-end: forecast drift, determinism, thread invariance ----------

class ForecastEquivalence : public KernelVariants {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    vocab_ = new features::CarVocab({*race_});

    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 13;  // deliberately not a multiple of the lane width
    cfg.embed_dim = 2;
    cfg.vocab = vocab_->size();
    model_ = std::make_shared<core::LstmSeqModel>(cfg);
    model_->set_scaler(features::StandardScaler(17.0, 9.0));
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete vocab_;
    delete race_;
  }

  static core::RaceSamples Forecast(std::uint64_t seed, int samples = 6) {
    core::RankNetForecaster f(model_, nullptr, *vocab_,
                              features::CovariateConfig{},
                              core::StatusSource::kOracle, "difftest");
    util::Rng rng(seed);
    return f.forecast(*race_, 50, 4, samples, rng);
  }

  static telemetry::RaceLog* race_;
  static features::CarVocab* vocab_;
  static std::shared_ptr<core::LstmSeqModel> model_;
};
telemetry::RaceLog* ForecastEquivalence::race_ = nullptr;
features::CarVocab* ForecastEquivalence::vocab_ = nullptr;
std::shared_ptr<core::LstmSeqModel> ForecastEquivalence::model_;

TEST_F(ForecastEquivalence, CrossVariantForecastDriftBounded) {
  ASSERT_TRUE(tk::set_variant(tk::Variant::kScalar).ok());
  const auto scalar = Forecast(97);
  ASSERT_TRUE(tk::set_variant(tk::Variant::kAvx2).ok());
  const auto avx2 = Forecast(97);

  ASSERT_FALSE(scalar.empty());
  ASSERT_EQ(scalar.size(), avx2.size());
  double abs_sum = 0.0;
  std::size_t count = 0;
  for (const auto& [car_id, m] : scalar) {
    const auto& n = avx2.at(car_id);
    ASSERT_EQ(m.rows(), n.rows());
    ASSERT_EQ(m.cols(), n.cols());
    for (std::size_t i = 0; i < m.size(); ++i) {
      ASSERT_TRUE(std::isfinite(n.flat()[i]));
      abs_sum += std::abs(m.flat()[i] - n.flat()[i]);
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_LT(abs_sum / static_cast<double>(count), 1e-6)
      << "scalar vs avx2 forecast MAE drift";
}

TEST_F(ForecastEquivalence, Avx2RunToRunBitIdentical) {
  ASSERT_TRUE(tk::set_variant(tk::Variant::kAvx2).ok());
  const auto a = Forecast(101);
  const auto b = Forecast(101);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [car_id, m] : a) {
    const auto& n = b.at(car_id);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(m.flat()[i]),
                std::bit_cast<std::uint64_t>(n.flat()[i]));
    }
  }
}

TEST_F(ForecastEquivalence, Avx2BitIdenticalAcrossEngineThreadCounts) {
  ASSERT_TRUE(tk::set_variant(tk::Variant::kAvx2).ok());
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "difftest");
  util::Rng direct_rng(7);
  const auto direct = f.forecast(*race_, 50, 4, 6, direct_rng);
  ASSERT_FALSE(direct.empty());

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    core::ParallelForecastEngine engine(f, threads);
    util::Rng rng(7);
    const auto out = engine.forecast(*race_, 50, 4, 6, rng);
    ASSERT_EQ(out.size(), direct.size()) << threads << " threads";
    for (const auto& [car_id, m] : direct) {
      const auto& n = out.at(car_id);
      ASSERT_EQ(m.size(), n.size());
      for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(m.flat()[i]),
                  std::bit_cast<std::uint64_t>(n.flat()[i]))
            << car_id << " at " << threads << " threads";
      }
    }
  }
}

TEST_F(ForecastEquivalence, ZeroSampleForecastThrowsUnderBothVariants) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "difftest");
  for (const auto v : {tk::Variant::kScalar, tk::Variant::kAvx2}) {
    ASSERT_TRUE(tk::set_variant(v).ok());
    util::Rng rng(1);
    EXPECT_THROW(f.forecast(*race_, 50, 4, 0, rng), std::invalid_argument)
        << tk::variant_name(v);
  }
}

}  // namespace

// ForecastCache unit & concurrency suite.
//
// Unit half: LRU mechanics (eviction order, refresh-on-hit, capacity
// clamp), key discrimination field by field, digest stability, and counter
// bookkeeping. Concurrency half: hammer one cache from many threads with
// mixed get/put/clear traffic so the TSan preset (RANKNET_SANITIZE=thread,
// ctest label "cache") can prove the single-mutex design race-free; the
// same test doubles as a value-integrity check in regular builds — a hit
// must always return the exact bytes that were put.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/forecast_cache.hpp"
#include "simulator/season.hpp"
#include "telemetry/race_log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ranknet;

core::RaceSamples make_samples(double seed, std::size_t cars = 2,
                               std::size_t rows = 3, std::size_t cols = 4) {
  core::RaceSamples out;
  for (std::size_t car = 0; car < cars; ++car) {
    tensor::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        m(r, c) = seed + static_cast<double>(car * 100 + r * 10 + c);
      }
    }
    out[static_cast<int>(car) + 1] = std::move(m);
  }
  return out;
}

bool same_bytes(const core::RaceSamples& a, const core::RaceSamples& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [car, m] : a) {
    const auto it = b.find(car);
    if (it == b.end()) return false;
    const auto& n = it->second;
    if (m.rows() != n.rows() || m.cols() != n.cols()) return false;
    if (std::memcmp(m.flat().data(), n.flat().data(),
                    m.flat().size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

core::ForecastCacheKey key(std::uint64_t base) {
  core::ForecastCacheKey k;
  k.race_digest = 0xfeedULL;
  k.base = base;
  k.model_version = 1;
  k.origin_lap = 50;
  k.horizon = 5;
  k.num_samples = 9;
  k.kernel_variant = 0;
  return k;
}

TEST(ForecastCache, HitReturnsExactBytesAndMissReturnsNullopt) {
  core::ForecastCache cache(4);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(key(1)).has_value());

  const auto value = make_samples(0.5);
  cache.put(key(1), value);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.get(key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(same_bytes(*hit, value));
  // The stored copy is independent of the caller's copy-out.
  const auto hit2 = cache.get(key(1));
  ASSERT_TRUE(hit2.has_value());
  EXPECT_TRUE(same_bytes(*hit2, value));
}

TEST(ForecastCache, KeyDiscriminatesEveryField) {
  core::ForecastCache cache(32);
  cache.put(key(1), make_samples(1.0));

  auto probe = [&cache](core::ForecastCacheKey k) {
    return cache.get(k).has_value();
  };
  EXPECT_TRUE(probe(key(1)));
  {
    auto k = key(1);
    k.race_digest ^= 1;
    EXPECT_FALSE(probe(k));
  }
  {
    auto k = key(1);
    k.base ^= 1;
    EXPECT_FALSE(probe(k));
  }
  {
    auto k = key(1);
    k.model_version ^= 1;
    EXPECT_FALSE(probe(k));
  }
  {
    auto k = key(1);
    k.origin_lap += 1;
    EXPECT_FALSE(probe(k));
  }
  {
    auto k = key(1);
    k.horizon += 1;
    EXPECT_FALSE(probe(k));
  }
  {
    auto k = key(1);
    k.num_samples += 1;
    EXPECT_FALSE(probe(k));
  }
  {
    auto k = key(1);
    k.kernel_variant += 1;  // scalar vs avx2 must never share an entry
    EXPECT_FALSE(probe(k));
  }
}

TEST(ForecastCache, EvictsLeastRecentlyUsed) {
  core::ForecastCache cache(2);
  cache.put(key(1), make_samples(1.0));
  cache.put(key(2), make_samples(2.0));
  // Touch key(1) so key(2) becomes the LRU entry.
  EXPECT_TRUE(cache.get(key(1)).has_value());
  cache.put(key(3), make_samples(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get(key(1)).has_value());
  EXPECT_FALSE(cache.get(key(2)).has_value());  // evicted
  EXPECT_TRUE(cache.get(key(3)).has_value());
}

TEST(ForecastCache, PutRefreshesExistingEntry) {
  core::ForecastCache cache(2);
  cache.put(key(1), make_samples(1.0));
  cache.put(key(2), make_samples(2.0));
  // Re-putting key(1) refreshes both its value and its LRU slot without
  // growing the cache.
  cache.put(key(1), make_samples(9.0));
  EXPECT_EQ(cache.size(), 2u);
  const auto hit = cache.get(key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(same_bytes(*hit, make_samples(9.0)));
  cache.put(key(3), make_samples(3.0));
  EXPECT_FALSE(cache.get(key(2)).has_value());  // key(2) was the LRU
  EXPECT_TRUE(cache.get(key(1)).has_value());
}

TEST(ForecastCache, CapacityClampsToOneAndClearEmpties) {
  core::ForecastCache cache(0);  // clamped up to 1
  EXPECT_EQ(cache.capacity(), 1u);
  cache.put(key(1), make_samples(1.0));
  cache.put(key(2), make_samples(2.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.get(key(1)).has_value());
  EXPECT_TRUE(cache.get(key(2)).has_value());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(key(2)).has_value());
}

TEST(ForecastCache, CountersTrackHitsMissesInsertsEvictions) {
  auto& ctr = core::CacheCounters::instance();
  ctr.reset();
  core::ForecastCache cache(1);

  EXPECT_FALSE(cache.get(key(1)).has_value());
  EXPECT_EQ(ctr.misses(), 1u);
  cache.put(key(1), make_samples(1.0));
  EXPECT_EQ(ctr.insertions(), 1u);
  EXPECT_TRUE(cache.get(key(1)).has_value());
  EXPECT_EQ(ctr.hits(), 1u);
  cache.put(key(2), make_samples(2.0));  // evicts key(1)
  EXPECT_EQ(ctr.evictions(), 1u);
  EXPECT_EQ(ctr.insertions(), 2u);
  EXPECT_DOUBLE_EQ(ctr.hit_rate(), 0.5);
  ctr.reset();
  EXPECT_EQ(ctr.hits() + ctr.misses() + ctr.insertions() + ctr.evictions(),
            0u);
}

TEST(ForecastCacheDigest, RaceStateDigestSeesEveryLap) {
  const auto race = sim::simulate_race({"Indy500", 2019, 200,
                                        sim::Usage::kTest});
  const auto other = sim::simulate_race({"Indy500", 2019, 201,
                                         sim::Usage::kTest});
  EXPECT_EQ(core::race_state_digest(race), core::race_state_digest(race));
  EXPECT_NE(core::race_state_digest(race), core::race_state_digest(other));
}

TEST(ForecastCacheKeyHash, DistinctFieldsDistinctHashes) {
  // Not a collision-freedom proof, just a smoke check that hash() mixes
  // every field (equal hashes for these near-miss keys would be a bug).
  const auto h0 = key(1).hash();
  auto k = key(1);
  k.kernel_variant = 1;
  EXPECT_NE(h0, k.hash());
  k = key(1);
  k.num_samples = 10;
  EXPECT_NE(h0, k.hash());
  EXPECT_EQ(h0, key(1).hash());
}

// ---------------------------------------------------------------------------
// Concurrency stress: the ctest "cache" label runs this under
// RANKNET_SANITIZE=thread. Mixed readers/writers over a deliberately tiny
// cache maximize eviction churn (the most race-prone path: splice + erase
// while another thread walks the same list).

TEST(ForecastCacheStress, ConcurrentGetPutEvictClear) {
  core::ForecastCache cache(4);  // small -> constant eviction pressure
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  constexpr int kKeySpace = 12;  // 3x capacity

  // Pre-built values, one per key, so integrity is checkable: a hit for
  // key i must carry value i's bytes.
  std::vector<core::RaceSamples> values;
  values.reserve(kKeySpace);
  for (int i = 0; i < kKeySpace; ++i) {
    values.push_back(make_samples(static_cast<double>(i)));
  }

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> corruptions{0};
  util::ThreadPool pool(kThreads);
  std::vector<std::future<void>> futures;
  for (int t = 0; t < kThreads; ++t) {
    futures.push_back(pool.submit([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int i = static_cast<int>(rng() % kKeySpace);
        const auto k = key(static_cast<std::uint64_t>(i));
        switch (rng() % 8) {
          case 0:
            cache.put(k, values[static_cast<std::size_t>(i)]);
            break;
          case 1:
            if (op % 97 == 0) cache.clear();
            break;
          default: {
            auto hit = cache.get(k);
            if (hit.has_value()) {
              hits.fetch_add(1, std::memory_order_relaxed);
              if (!same_bytes(*hit, values[static_cast<std::size_t>(i)])) {
                corruptions.fetch_add(1, std::memory_order_relaxed);
              }
            }
            break;
          }
        }
      }
    }));
  }
  for (auto& f : futures) f.get();

  EXPECT_EQ(corruptions.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  // With 8 threads re-reading a 12-key space, some hits must land.
  EXPECT_GT(hits.load(), 0u);
}

// ---------------------------------------------------------------------------
// Lock striping (the fleet's cache partitioning). A striped cache must keep
// the single-stripe semantics per key — stable partition, exact byte
// replay, bounded size — and its global counters must stay EXACTLY
// consistent under concurrency, not just approximately.

TEST(ForecastCacheStriped, StripeOfIsPureAndInRange) {
  core::ForecastCache cache(64, /*stripes=*/8);
  EXPECT_EQ(cache.stripes(), 8u);
  for (std::uint64_t b = 0; b < 256; ++b) {
    const auto k = key(b);
    const auto s = cache.stripe_of(k);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, cache.stripe_of(k));  // pure function of the key
  }
  // Single stripe: everything maps to stripe 0 (legacy layout).
  core::ForecastCache single(64);
  EXPECT_EQ(single.stripes(), 1u);
  EXPECT_EQ(single.stripe_of(key(123)), 0u);
}

TEST(ForecastCacheStriped, KeysActuallySpreadAcrossStripes) {
  core::ForecastCache cache(64, /*stripes=*/8);
  std::vector<int> occupancy(8, 0);
  for (std::uint64_t b = 0; b < 256; ++b) {
    occupancy[cache.stripe_of(key(b))]++;
  }
  // The remixed hash must not collapse; every stripe sees some keys.
  for (int n : occupancy) EXPECT_GT(n, 0);
}

TEST(ForecastCacheStriped, HitReplaysExactBytesAndSizeStaysBounded) {
  core::ForecastCache cache(8, /*stripes=*/4);
  EXPECT_EQ(cache.capacity(), 8u);
  for (std::uint64_t b = 0; b < 64; ++b) {
    cache.put(key(b), make_samples(static_cast<double>(b)));
  }
  // Per-stripe LRU: total occupancy never exceeds total capacity.
  EXPECT_LE(cache.size(), cache.capacity());
  // Whatever survived must replay exact bytes.
  std::size_t hits = 0;
  for (std::uint64_t b = 0; b < 64; ++b) {
    if (auto hit = cache.get(key(b))) {
      ++hits;
      EXPECT_TRUE(same_bytes(*hit, make_samples(static_cast<double>(b))));
    }
  }
  EXPECT_GT(hits, 0u);
}

// The fleet satellite's regression test: 8 threads (one per "shard")
// hammering one striped cache with mixed get/put, and the global
// forecast_cache.* counters must balance EXACTLY afterwards:
//   hits + misses == gets issued      (every get books exactly one)
//   insertions - evictions == size()  (every insert/evict books exactly one;
//                                      no clear() in this test)
// A lost or double-counted event under stripe concurrency fails this test
// deterministically, whatever the interleaving.
TEST(ForecastCacheStriped, StripedAccountingExactUnderConcurrency) {
  core::ForecastCache cache(16, /*stripes=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  constexpr int kKeySpace = 48;  // 3x capacity -> steady eviction churn

  std::vector<core::RaceSamples> values;
  values.reserve(kKeySpace);
  for (int i = 0; i < kKeySpace; ++i) {
    values.push_back(make_samples(static_cast<double>(i)));
  }

  auto& counters = core::CacheCounters::instance();
  const auto hits0 = counters.hits();
  const auto misses0 = counters.misses();
  const auto inserts0 = counters.insertions();
  const auto evicts0 = counters.evictions();

  std::atomic<std::uint64_t> gets{0};
  util::ThreadPool pool(kThreads);
  std::vector<std::future<void>> futures;
  for (int t = 0; t < kThreads; ++t) {
    futures.push_back(pool.submit([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 99);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int i = static_cast<int>(rng() % kKeySpace);
        const auto k = key(static_cast<std::uint64_t>(i));
        if (rng() % 3 == 0) {
          cache.put(k, values[static_cast<std::size_t>(i)]);
        } else {
          gets.fetch_add(1, std::memory_order_relaxed);
          (void)cache.get(k);
        }
      }
    }));
  }
  for (auto& f : futures) f.get();

  const auto hits = counters.hits() - hits0;
  const auto misses = counters.misses() - misses0;
  const auto inserts = counters.insertions() - inserts0;
  const auto evicts = counters.evictions() - evicts0;
  EXPECT_EQ(hits + misses, gets.load());
  EXPECT_EQ(inserts - evicts, static_cast<std::uint64_t>(cache.size()));
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(inserts, 0u);
  EXPECT_GT(evicts, 0u);  // 3x key space must actually churn
}

// ---------------------------------------------------------------------------
// Striped-capacity regression suite. The original ctor gave every stripe
// ceil(capacity / stripes) slots, so any (capacity % stripes != 0) combo
// admitted more entries than configured — capacity=10, stripes=8 held 16.

// Fill far past capacity with keys that spread over all stripes; the cache
// must never hold more than the configured total (or, when capacity <
// stripes, more than one entry per stripe — the documented floor).
TEST(ForecastCacheStriped, TotalSizeNeverExceedsConfiguredCapacity) {
  const struct {
    std::size_t capacity, stripes;
  } combos[] = {{10, 8}, {1, 8}, {4, 3}, {7, 2}, {64, 7}, {8, 8}, {3, 16}};
  for (const auto& cfg : combos) {
    core::ForecastCache cache(cfg.capacity, cfg.stripes);
    for (std::uint64_t i = 0; i < 50 * (cfg.capacity + cfg.stripes); ++i) {
      cache.put(key(i), make_samples(static_cast<double>(i), 1, 1, 1));
    }
    const std::size_t bound = std::max(cfg.capacity, cfg.stripes);
    EXPECT_LE(cache.size(), bound)
        << "capacity=" << cfg.capacity << " stripes=" << cfg.stripes;
    if (cfg.capacity >= cfg.stripes) {
      // Enough keys hit every stripe to fill it, so the bound is tight.
      EXPECT_EQ(cache.size(), cfg.capacity)
          << "capacity=" << cfg.capacity << " stripes=" << cfg.stripes;
    }
  }
}

// Accounting identity at the exact capacity boundary of an uneven split
// (the satellite's "accounting identities at the new capacity boundary"):
// insertions - evictions == size() must hold through the fill, at the
// boundary, and through the post-boundary churn.
TEST(ForecastCacheStriped, AccountingIdentityAtCapacityBoundary) {
  auto& counters = core::CacheCounters::instance();
  core::ForecastCache cache(10, /*stripes=*/8);
  const auto inserts0 = counters.insertions();
  const auto evicts0 = counters.evictions();
  for (std::uint64_t i = 0; i < 500; ++i) {
    cache.put(key(i), make_samples(static_cast<double>(i), 1, 1, 1));
    EXPECT_EQ(counters.insertions() - inserts0 -
                  (counters.evictions() - evicts0),
              static_cast<std::uint64_t>(cache.size()));
    EXPECT_LE(cache.size(), cache.capacity());
  }
}

// ---------------------------------------------------------------------------
// Digest canonicalization regression suite. update_double used to hash the
// raw bit pattern, so numerically identical race states whose doubles
// differed only as -0.0 vs 0.0 (or in NaN payload bits) digested
// differently and silently split cache entries.

TEST(ForecastCacheDigest, UpdateDoubleCanonicalizesSignedZero) {
  core::Fnv1a a, b;
  a.update_double(0.0);
  b.update_double(-0.0);
  EXPECT_EQ(a.digest(), b.digest());
  // Nonzero values must still hash their exact bits.
  core::Fnv1a c, d;
  c.update_double(1.0);
  d.update_double(std::nextafter(1.0, 2.0));
  EXPECT_NE(c.digest(), d.digest());
}

TEST(ForecastCacheDigest, UpdateDoubleCanonicalizesNanPayloads) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // A NaN with different payload bits (still a NaN after the bit surgery).
  std::uint64_t bits;
  std::memcpy(&bits, &qnan, sizeof(bits));
  bits ^= 0x5ull;  // perturb low mantissa bits, keep exponent all-ones
  double other_nan;
  std::memcpy(&other_nan, &bits, sizeof(other_nan));
  ASSERT_TRUE(std::isnan(other_nan));

  core::Fnv1a a, b;
  a.update_double(qnan);
  b.update_double(other_nan);
  EXPECT_EQ(a.digest(), b.digest());
  // ... but a NaN must not collide with a plain value.
  core::Fnv1a c;
  c.update_double(1.0);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(ForecastCacheDigest, RaceStateDigestIgnoresZeroSignInLapTimes) {
  // Two one-car, one-lap races identical except lap_time -0.0 vs 0.0 —
  // numerically the same race state must produce the same digest.
  telemetry::EventInfo info;
  info.name = "Unit";
  info.year = 2026;
  info.total_laps = 1;
  telemetry::LapRecord rec;
  rec.rank = 1;
  rec.car_id = 7;
  rec.lap = 1;
  rec.lap_time = 0.0;
  telemetry::RaceLog pos(info, {rec});
  rec.lap_time = -0.0;
  telemetry::RaceLog neg(info, {rec});
  EXPECT_EQ(core::race_state_digest(pos), core::race_state_digest(neg));
}

}  // namespace

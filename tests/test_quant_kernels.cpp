// Differential harness for the reduced-precision dispatch variants
// (tensor::kernels::Variant::{kBf16, kInt8}; tensor/quant.hpp) — the
// precision axis of the PR-5 kernel-equivalence harness.
//
// Guarantee layers, strongest first:
//   1. WITHIN each reduced variant: bit-identity. Warm and cold packs hold
//      identical bytes, repeated GEMMs agree byte-for-byte, batched rows
//      equal the same rows computed alone (the property that makes the
//      decode tree and engine partitioning safe), and end-to-end forecasts
//      are run-to-run byte-stable with tree == independent decode.
//   2. ACROSS precision (reduced vs f64 scalar): analytic per-element GEMM
//      error fences derived from the quantization step sizes, an exact-
//      representability case that must match f64 bit-for-bit, and
//      end-to-end forecast MAE fences (bf16 tight, int8 looser).
//   3. PLUMBING: parse/dispatch/counters for the new variants, calibration
//      recording + application, and v3 artifact round-trip.
//
// Every fixture restores the entry variant and clears pack/calibration
// state on teardown so test order never leaks a numerics point.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "core/ranknet.hpp"
#include "core/registry.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "simulator/season.hpp"
#include "tensor/kernels.hpp"
#include "tensor/quant.hpp"
#include "tensor/simd_kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace ranknet;
namespace tk = tensor::kernels;
namespace tq = tensor::quant;

constexpr tk::Variant kReduced[] = {tk::Variant::kBf16, tk::Variant::kInt8};

std::vector<double> random_vec(std::size_t n, util::Rng& rng, double lo = -2.0,
                               double hi = 2.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = lo + (hi - lo) * rng.uniform();
  return v;
}

::testing::AssertionResult BitEqual(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i]
             << " differ in bits";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Save/restore the active variant and wipe quant state so packs or a
/// calibration installed by one test never leak into another.
class QuantKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = tk::active_variant();
    tq::set_activation_calibration({});
    tq::clear_packs();
  }
  void TearDown() override {
    tq::set_activation_calibration({});
    tq::clear_packs();
    if (tk::cpu_supports(saved_)) {
      ASSERT_TRUE(tk::set_variant(saved_).ok());
    }
  }
  tk::Variant saved_ = tk::Variant::kScalar;
};

// ---- bf16 scalar conversions ---------------------------------------------

TEST_F(QuantKernels, Bf16RoundTripsRepresentableValues) {
  // Every value with <= 8 significand bits survives the round trip exactly.
  for (const double v : {0.0, 1.0, -1.0, 0.5, -0.375, 2.0, 128.0, -0.0078125,
                         3.140625, -255.0}) {
    EXPECT_EQ(tq::from_bf16(tq::to_bf16(v)), v) << v;
  }
  // Signed zero is preserved (bf16 keeps the sign bit).
  EXPECT_TRUE(std::signbit(tq::from_bf16(tq::to_bf16(-0.0))));
  EXPECT_FALSE(std::signbit(tq::from_bf16(tq::to_bf16(0.0))));
  // Infinities widen back exactly.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(tq::from_bf16(tq::to_bf16(inf)), inf);
  EXPECT_EQ(tq::from_bf16(tq::to_bf16(-inf)), -inf);
}

TEST_F(QuantKernels, Bf16RoundsToNearestEven) {
  // bf16 holds 8 significand bits, so the step inside [1, 2) is 2^-7 and
  // the neighbours of 1.0 are 1.0 and 1.0078125. The exact midpoint
  // 1 + 2^-8 rounds to the even significand (1.0); a nudge above it must
  // round up.
  EXPECT_EQ(tq::from_bf16(tq::to_bf16(1.0 + 0x1p-8)), 1.0);
  EXPECT_EQ(tq::from_bf16(tq::to_bf16(1.0 + 0x1p-8 + 0x1p-20)), 1.0078125);
  // 1 + 3*2^-8 is the midpoint above an ODD significand: rounds up to the
  // even neighbour 1.015625 instead of truncating.
  EXPECT_EQ(tq::from_bf16(tq::to_bf16(1.0 + 3 * 0x1p-8)), 1.015625);
  // Relative error of RNE is at most half a step (2^-8) for normal values.
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = (rng.uniform() - 0.5) * 100.0;
    const double r = tq::from_bf16(tq::to_bf16(v));
    EXPECT_LE(std::abs(r - v), std::abs(v) * 0x1p-8) << v;
  }
}

TEST_F(QuantKernels, Bf16NanCanonicalizes) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  double payload = qnan;
  auto bits = std::bit_cast<std::uint64_t>(payload);
  bits ^= 0x5;  // different NaN payload, still a NaN
  payload = std::bit_cast<double>(bits);
  ASSERT_TRUE(std::isnan(payload));
  // All NaNs pack to the one canonical bf16 NaN: packed bytes stay a pure
  // function of numeric value.
  EXPECT_EQ(tq::to_bf16(qnan), tq::to_bf16(payload));
  EXPECT_EQ(tq::to_bf16(qnan), 0x7fc0);
  EXPECT_TRUE(std::isnan(tq::from_bf16(tq::to_bf16(qnan))));
}

// ---- pack registry: purity, invalidation, fingerprint defense ------------

TEST_F(QuantKernels, WarmAndColdPacksHoldIdenticalBytes) {
  util::Rng rng(11);
  const auto w = random_vec(13 * 9, rng);
  const auto cold = tq::acquire_bf16(w.data(), 13, 9);
  const auto warm = tq::acquire_bf16(w.data(), 13, 9);
  EXPECT_EQ(cold.get(), warm.get()) << "second acquire must hit the cache";
  tq::clear_packs();
  const auto recold = tq::acquire_bf16(w.data(), 13, 9);
  ASSERT_EQ(cold->data.size(), recold->data.size());
  EXPECT_EQ(cold->data, recold->data) << "packing is not a pure function";

  const auto i_cold = tq::acquire_int8(w.data(), 13, 9);
  tq::clear_packs();
  const auto i_recold = tq::acquire_int8(w.data(), 13, 9);
  EXPECT_EQ(i_cold->data, i_recold->data);
  EXPECT_EQ(i_cold->scale, i_recold->scale);
  EXPECT_EQ(i_cold->zero_point, 0.0) << "symmetric quantization only";
}

TEST_F(QuantKernels, InvalidateDropsPacksAndSurvivingRefsStayUsable) {
  util::Rng rng(13);
  const auto w = random_vec(8 * 8, rng);
  const auto pack = tq::acquire_int8(w.data(), 8, 8);
  const std::size_t before = tq::pack_count();
  tq::invalidate(w.data());
  EXPECT_LT(tq::pack_count(), before);
  // The shared_ptr keeps the dropped pack alive for in-flight readers.
  EXPECT_EQ(pack->rows, 8u);
  EXPECT_EQ(pack->data.size(), 64u);
}

TEST_F(QuantKernels, FingerprintCatchesOutOfBandWeightMutation) {
  util::Rng rng(17);
  auto w = random_vec(6 * 6, rng);
  const auto pack = tq::acquire_bf16(w.data(), 6, 6);
  // Mutate without calling invalidate() — the sampled content fingerprint
  // must notice at the next acquire and rebuild.
  w[0] += 1.0;
  const auto repack = tq::acquire_bf16(w.data(), 6, 6);
  EXPECT_NE(pack.get(), repack.get());
  EXPECT_EQ(repack->data[0], tq::to_bf16(w[0]));
}

// ---- GEMM differentials vs f64 scalar ------------------------------------

// Analytic per-element error fences. With per-row activation step ea and
// weight step eb, |err(c_ij)| <= sum_k (|a|*eb + |b|*ea + ea*eb); we bound
// it by k * amax * bmax * tol with tol derived from the step sizes plus
// 2x headroom:
//   bf16: both operands RNE-rounded, relative step 2^-9 each -> 2^-8 * 2.
//   int8: steps amax/254 and bmax/254 -> 1/127 * 2.
double gemm_error_bound(tk::Variant v, std::size_t k, double amax,
                        double bmax) {
  const double tol = v == tk::Variant::kBf16 ? 2.0 * 0x1p-8 : 2.0 / 127.0;
  return static_cast<double>(k) * amax * bmax * tol;
}

TEST_F(QuantKernels, GemmErrorWithinAnalyticFenceAcrossShapes) {
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 3, 1}, {1, 8, 1},  {2, 8, 4},  {3, 5, 33},
                {5, 13, 9}, {7, 37, 12}, {13, 7, 21}, {4, 160, 8}};
  util::Rng rng(23);
  for (const auto& s : shapes) {
    const auto a = random_vec(s.m * s.k, rng);
    const auto b = random_vec(s.k * s.n, rng);
    const auto c_init = random_vec(s.m * s.n, rng);
    auto c_ref = c_init;
    tk::table(tk::Variant::kScalar)
        .gemm_nn(1.0, a.data(), b.data(), 1.0, c_ref.data(), s.m, s.k, s.n);
    for (const auto v : kReduced) {
      auto c = c_init;
      tk::table(v).gemm_nn(1.0, a.data(), b.data(), 1.0, c.data(), s.m, s.k,
                           s.n);
      const double bound = gemm_error_bound(v, s.k, 2.0, 2.0);
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_TRUE(std::isfinite(c[i]));
        EXPECT_LE(std::abs(c[i] - c_ref[i]), bound)
            << tk::variant_name(v) << " " << s.m << "x" << s.k << "x" << s.n
            << " element " << i;
      }
    }
  }
}

TEST_F(QuantKernels, GemmAlphaBetaHandledExactlyLikeScalar) {
  // Exact-representability case: integer operands whose absmax is exactly
  // 127 make every quantization scale exactly 1.0 (int8) and are
  // bf16-exact (integers below 256 carry <= 8 significand bits), alpha
  // and beta are powers of two, and all partial sums are exact in f64 —
  // so BOTH reduced variants must reproduce the f64 scalar GEMM to the
  // bit. This pins the alpha/beta/epilogue plumbing with zero tolerance.
  const std::size_t m = 3, k = 4, n = 5;
  std::vector<double> a(m * k), b(k * n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<double>(static_cast<int>(i * 37 % 201) - 100);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<double>(static_cast<int>(i * 53 % 201) - 100);
  }
  // Force every per-row activation absmax and the weight absmax to 127.
  for (std::size_t r = 0; r < m; ++r) a[r * k] = (r % 2 != 0) ? -127.0 : 127.0;
  b[0] = -127.0;
  std::vector<double> c_init(m * n);
  for (std::size_t i = 0; i < c_init.size(); ++i) {
    c_init[i] = static_cast<double>(static_cast<int>(i % 11) - 5);
  }
  for (const auto& [alpha, beta] :
       {std::pair{1.0, 0.0}, {0.5, 1.0}, {2.0, -1.0}, {0.0, 0.5}}) {
    auto c_ref = c_init;
    tk::table(tk::Variant::kScalar)
        .gemm_nn(alpha, a.data(), b.data(), beta, c_ref.data(), m, k, n);
    for (const auto v : kReduced) {
      tq::clear_packs();
      auto c = c_init;
      tk::table(v).gemm_nn(alpha, a.data(), b.data(), beta, c.data(), m, k, n);
      EXPECT_TRUE(BitEqual(c, c_ref))
          << tk::variant_name(v) << " alpha=" << alpha << " beta=" << beta;
    }
  }
}

TEST_F(QuantKernels, GemmRepeatCallsBitIdentical) {
  util::Rng rng(31);
  const std::size_t m = 5, k = 16, n = 7;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  for (const auto v : kReduced) {
    std::vector<double> c1(m * n, 0.0), c2(m * n, 0.0);
    tk::table(v).gemm_nn(1.0, a.data(), b.data(), 0.0, c1.data(), m, k, n);
    tq::clear_packs();  // cold vs warm pack must not change a bit either
    tk::table(v).gemm_nn(1.0, a.data(), b.data(), 0.0, c2.data(), m, k, n);
    EXPECT_TRUE(BitEqual(c1, c2)) << tk::variant_name(v);
  }
}

TEST_F(QuantKernels, BatchedRowsBitIdenticalToSingleRows) {
  // THE decode-tree / partitioning safety property: row r inside a batch
  // must produce the same bits as row r alone. For int8 this is exactly
  // why activation scales are per-row, never per-batch — rows here have
  // wildly different magnitudes to catch any cross-row coupling.
  util::Rng rng(37);
  const std::size_t m = 6, k = 13, n = 9;
  auto a = random_vec(m * k, rng);
  for (std::size_t r = 0; r < m; ++r) {
    const double scale = std::pow(10.0, static_cast<double>(r) - 3.0);
    for (std::size_t j = 0; j < k; ++j) a[r * k + j] *= scale;
  }
  const auto b = random_vec(k * n, rng);
  for (const auto v : kReduced) {
    std::vector<double> c_batch(m * n, 0.0);
    tk::table(v).gemm_nn(1.0, a.data(), b.data(), 0.0, c_batch.data(), m, k,
                         n);
    for (std::size_t r = 0; r < m; ++r) {
      std::vector<double> c_row(n, 0.0);
      tk::table(v).gemm_nn(1.0, a.data() + r * k, b.data(), 0.0, c_row.data(),
                           1, k, n);
      const std::vector<double> batch_row(c_batch.begin() + r * n,
                                          c_batch.begin() + (r + 1) * n);
      EXPECT_TRUE(BitEqual(batch_row, c_row))
          << tk::variant_name(v) << " row " << r;
    }
  }
}

TEST_F(QuantKernels, NonGemmKernelsInheritedFromFullPrecisionBase) {
  // Only the non-transposed GEMM is reduced; every other entry (pointwise,
  // fused epilogues) is the base table's f64 implementation — same
  // function pointers, so equivalence is structural, not statistical.
  const auto& base = tk::cpu_supports(tk::Variant::kAvx2)
                         ? tk::table(tk::Variant::kAvx2)
                         : tk::table(tk::Variant::kScalar);
  for (const auto v : kReduced) {
    const auto& t = tk::table(v);
    EXPECT_EQ(t.variant, v);
    EXPECT_NE(t.gemm_nn, base.gemm_nn) << tk::variant_name(v);
    EXPECT_EQ(t.sigmoid, base.sigmoid);
    EXPECT_EQ(t.tanh, base.tanh);
    EXPECT_EQ(t.hadamard, base.hadamard);
    EXPECT_EQ(t.hadamard_add, base.hadamard_add);
    EXPECT_EQ(t.add_bias_rows, base.add_bias_rows);
    EXPECT_EQ(t.lstm_gates, base.lstm_gates);
    EXPECT_EQ(t.dense_epilogue, base.dense_epilogue);
  }
}

// ---- dispatch plumbing ---------------------------------------------------

TEST_F(QuantKernels, ParseAndDispatchReducedVariants) {
  for (const auto& [name, v] : {std::pair{"bf16", tk::Variant::kBf16},
                                {"int8", tk::Variant::kInt8}}) {
    const auto parsed = tk::parse_variant(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed.value(), v);
    EXPECT_STREQ(tk::variant_name(v), name);
    EXPECT_TRUE(tk::cpu_supports(v)) << "reduced variants are portable";
    ASSERT_TRUE(tk::apply_env_override(name).ok());
    EXPECT_EQ(tk::active_variant(), v);
  }
  // Auto-detection must never opt into reduced precision.
  ASSERT_TRUE(tk::apply_env_override(nullptr).ok());
  const auto best = tk::active_variant();
  EXPECT_TRUE(best == tk::Variant::kScalar || best == tk::Variant::kAvx2);
}

TEST_F(QuantKernels, ObsCountersProveReducedVariantRan) {
  auto& reg = obs::Registry::instance();
  util::Rng rng(41);
  tensor::Matrix a(2, 3), b(3, 4), c(2, 4);
  for (auto& x : a.flat()) x = rng.uniform();
  for (auto& x : b.flat()) x = rng.uniform();
  for (const auto v : kReduced) {
    auto& calls = reg.counter(std::string("tensor.kernel.") +
                              tk::variant_name(v) + ".calls");
    ASSERT_TRUE(tk::set_variant(v).ok());
    const auto c0 = calls.value();
    tensor::gemm(1.0, a, false, b, false, 0.0, c);
    EXPECT_GT(calls.value(), c0) << tk::variant_name(v);
    EXPECT_EQ(
        static_cast<int>(reg.gauge("tensor.kernel.active_variant").value()),
        static_cast<int>(v));
  }
}

// ---- calibration ---------------------------------------------------------

TEST_F(QuantKernels, CalibrationRecorderFoldsAbsmaxByName) {
  tq::recording_begin();
  ASSERT_TRUE(tq::recording_active());
  const double a1[] = {0.5, -3.0, 1.0};
  const double a2[] = {2.0, std::numeric_limits<double>::quiet_NaN(), -1.0};
  tq::record_activation("probe.weight", a1, 3);
  tq::record_activation("probe.weight", a2, 3);  // NaN must be ignored
  tq::record_activation("other.weight", a1, 1);
  const auto calib = tq::recording_end();
  EXPECT_FALSE(tq::recording_active());
  ASSERT_EQ(calib.count("probe.weight"), 1u);
  EXPECT_EQ(calib.at("probe.weight"), 3.0);
  EXPECT_EQ(calib.at("other.weight"), 0.5);
}

TEST_F(QuantKernels, CalibratedScaleReachesInt8PackByName) {
  util::Rng rng(43);
  const auto w = random_vec(4 * 4, rng);
  tq::annotate(w.data(), "calib.weight");
  const auto dynamic_pack = tq::acquire_int8(w.data(), 4, 4);
  EXPECT_EQ(dynamic_pack->act_absmax, 0.0) << "no calibration yet";

  tq::set_activation_calibration({{"calib.weight", 6.5}});
  const auto calibrated = tq::acquire_int8(w.data(), 4, 4);
  EXPECT_EQ(calibrated->act_absmax, 6.5);

  // Reverting to the empty calibration restores dynamic scales.
  tq::set_activation_calibration({});
  EXPECT_EQ(tq::acquire_int8(w.data(), 4, 4)->act_absmax, 0.0);
}

TEST_F(QuantKernels, CalibratedGemmStaysInsideFenceAndRowPure) {
  util::Rng rng(47);
  const std::size_t m = 4, k = 13, n = 6;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<double> c_ref(m * n, 0.0);
  tk::table(tk::Variant::kScalar)
      .gemm_nn(1.0, a.data(), b.data(), 0.0, c_ref.data(), m, k, n);

  tq::annotate(b.data(), "fence.weight");
  tq::set_activation_calibration({{"fence.weight", 2.0}});
  std::vector<double> c_batch(m * n, 0.0);
  tk::table(tk::Variant::kInt8)
      .gemm_nn(1.0, a.data(), b.data(), 0.0, c_batch.data(), m, k, n);
  for (std::size_t i = 0; i < c_batch.size(); ++i) {
    EXPECT_LE(std::abs(c_batch[i] - c_ref[i]),
              gemm_error_bound(tk::Variant::kInt8, k, 2.0, 2.0));
  }
  // Fixed scale is trivially row-pure; batching must still not matter.
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<double> c_row(n, 0.0);
    tk::table(tk::Variant::kInt8)
        .gemm_nn(1.0, a.data() + r * k, b.data(), 0.0, c_row.data(), 1, k, n);
    const std::vector<double> batch_row(c_batch.begin() + r * n,
                                        c_batch.begin() + (r + 1) * n);
    EXPECT_TRUE(BitEqual(batch_row, c_row)) << "calibrated row " << r;
  }
}

// ---- v3 artifact round-trip ----------------------------------------------

class QuantSerialize : public QuantKernels {
 protected:
  std::string TempPath(const char* name) {
    const auto dir = std::filesystem::temp_directory_path() / "ranknet_quant";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  static nn::Parameter MakeParam(const char* name, std::size_t rows,
                                 std::size_t cols, util::Rng& rng) {
    tensor::Matrix m(rows, cols);
    for (auto& v : m.flat()) v = rng.uniform() - 0.5;
    return nn::Parameter(name, std::move(m));
  }
};

TEST_F(QuantSerialize, CalibrationRoundTripsThroughV3Artifact) {
  util::Rng rng(53);
  nn::Parameter p = MakeParam("roundtrip.weight", 3, 4, rng);
  const std::string path = TempPath("v3.bin");
  const tq::Calibration calib{{"lstm0.wx", 4.25}, {"head.mu.weight", 1.5}};
  nn::save_params(path, {&p}, calib);

  nn::Parameter q = MakeParam("roundtrip.weight", 3, 4, rng);
  tq::Calibration loaded;
  ASSERT_TRUE(nn::try_load_params(path, {&q}, &loaded).ok());
  EXPECT_EQ(loaded, calib);
  for (std::size_t i = 0; i < p.value.size(); ++i) {
    EXPECT_EQ(q.value.flat()[i], p.value.flat()[i]);
  }
  // The calibration-blind overload still reads v3 weights.
  nn::Parameter r = MakeParam("roundtrip.weight", 3, 4, rng);
  ASSERT_TRUE(nn::try_load_params(path, {&r}).ok());
  EXPECT_EQ(r.value.flat()[0], p.value.flat()[0]);
  std::filesystem::remove(path);
}

TEST_F(QuantSerialize, V2ArtifactLoadsWithEmptyCalibration) {
  util::Rng rng(59);
  nn::Parameter p = MakeParam("plain.weight", 2, 2, rng);
  const std::string path = TempPath("v2.bin");
  nn::save_params(path, {&p});
  tq::Calibration loaded{{"stale", 1.0}};
  nn::Parameter q = MakeParam("plain.weight", 2, 2, rng);
  ASSERT_TRUE(nn::try_load_params(path, {&q}, &loaded).ok());
  EXPECT_TRUE(loaded.empty()) << "v2 must clear, not keep, stale calibration";
  std::filesystem::remove(path);
}

TEST_F(QuantSerialize, TruncatedCalibrationSectionRejectedWithoutCommit) {
  util::Rng rng(61);
  nn::Parameter p = MakeParam("trunc.weight", 2, 3, rng);
  const std::string path = TempPath("v3_trunc.bin");
  nn::save_params(path, {&p}, {{"trunc.weight", 2.0}});
  // Chop the calibration tail off the payload; the size/checksum envelope
  // catches it before the parser even runs.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 8);
  nn::Parameter q = MakeParam("trunc.weight", 2, 3, rng);
  const auto before = q.value.flat()[0];
  tq::Calibration loaded;
  EXPECT_FALSE(nn::try_load_params(path, {&q}, &loaded).ok());
  EXPECT_EQ(q.value.flat()[0], before) << "failed load must not touch params";
  std::filesystem::remove(path);
}

TEST_F(QuantSerialize, LoadCommitInvalidatesStalePacks) {
  util::Rng rng(67);
  nn::Parameter p = MakeParam("swap.weight", 4, 4, rng);
  const std::string path = TempPath("swap.bin");
  nn::save_params(path, {&p});

  // Mutate, pack the mutated weights, then load the artifact back: the
  // pack keyed to this pointer must be rebuilt from the restored bytes.
  for (auto& v : p.value.flat()) v += 1.0;
  const auto stale = tq::acquire_bf16(p.value.data(), 4, 4);
  ASSERT_TRUE(nn::try_load_params(path, {&p}, nullptr).ok());
  const auto fresh = tq::acquire_bf16(p.value.data(), 4, 4);
  EXPECT_EQ(fresh->data[0], tq::to_bf16(p.value.flat()[0]));
  EXPECT_NE(stale->data[0], fresh->data[0]);
  std::filesystem::remove(path);
}

// ---- end-to-end forecast fences ------------------------------------------

class QuantForecast : public QuantKernels {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    vocab_ = new features::CarVocab({*race_});
    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 13;
    cfg.embed_dim = 2;
    cfg.vocab = vocab_->size();
    model_ = std::make_shared<core::LstmSeqModel>(cfg);
    model_->set_scaler(features::StandardScaler(17.0, 9.0));
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete vocab_;
    delete race_;
  }

  static core::RaceSamples Forecast(std::uint64_t seed,
                                    core::DecodeMode mode) {
    core::RankNetForecaster f(model_, nullptr, *vocab_,
                              features::CovariateConfig{},
                              core::StatusSource::kOracle, "quanttest");
    f.set_decode_mode(mode);
    util::Rng rng(seed);
    return f.forecast(*race_, 50, 4, 6, rng);
  }

  static double ForecastMae(const core::RaceSamples& x,
                            const core::RaceSamples& y) {
    double abs_sum = 0.0;
    std::size_t count = 0;
    for (const auto& [car_id, m] : x) {
      const auto& n = y.at(car_id);
      EXPECT_EQ(m.rows(), n.rows());
      EXPECT_EQ(m.cols(), n.cols());
      for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_TRUE(std::isfinite(n.flat()[i]));
        abs_sum += std::abs(m.flat()[i] - n.flat()[i]);
        ++count;
      }
    }
    return count == 0 ? 0.0 : abs_sum / static_cast<double>(count);
  }

  static telemetry::RaceLog* race_;
  static features::CarVocab* vocab_;
  static std::shared_ptr<core::LstmSeqModel> model_;
};
telemetry::RaceLog* QuantForecast::race_ = nullptr;
features::CarVocab* QuantForecast::vocab_ = nullptr;
std::shared_ptr<core::LstmSeqModel> QuantForecast::model_;

TEST_F(QuantForecast, CrossPrecisionForecastMaeBounded) {
  ASSERT_TRUE(tk::set_variant(tk::Variant::kScalar).ok());
  const auto ref = Forecast(97, core::DecodeMode::kIndependent);
  ASSERT_FALSE(ref.empty());
  // Rank positions live on roughly [1, 33]; ancestral feedback amplifies
  // kernel-level drift, so these are forecast-level fences (empirically
  // ~0.01 for bf16 and ~0.2 for int8 on this probe), not kernel ULPs.
  // bf16 must stay an order of magnitude tighter than int8.
  const struct {
    tk::Variant v;
    double fence;
  } cases[] = {{tk::Variant::kBf16, 0.15}, {tk::Variant::kInt8, 1.5}};
  for (const auto& c : cases) {
    ASSERT_TRUE(tk::set_variant(c.v).ok());
    const auto out = Forecast(97, core::DecodeMode::kIndependent);
    ASSERT_EQ(out.size(), ref.size());
    const double mae = ForecastMae(ref, out);
    EXPECT_LT(mae, c.fence) << tk::variant_name(c.v);
    EXPECT_GT(mae, 0.0) << tk::variant_name(c.v)
                        << " suspicious: reduced precision changed nothing";
  }
}

TEST_F(QuantForecast, ReducedVariantsRunToRunBitIdentical) {
  for (const auto v : kReduced) {
    ASSERT_TRUE(tk::set_variant(v).ok());
    const auto a = Forecast(101, core::DecodeMode::kIndependent);
    tq::clear_packs();  // force a repack between runs
    const auto b = Forecast(101, core::DecodeMode::kIndependent);
    ASSERT_FALSE(a.empty());
    for (const auto& [car_id, m] : a) {
      const auto& n = b.at(car_id);
      for (std::size_t i = 0; i < m.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(m.flat()[i]),
                  std::bit_cast<std::uint64_t>(n.flat()[i]))
            << tk::variant_name(v) << " car " << car_id;
      }
    }
  }
}

TEST_F(QuantForecast, DecodeTreeBitIdenticalUnderReducedPrecision) {
  // The PR-6 tree == independent proof must survive the precision axis:
  // per-row (or calibration-fixed) int8 scales and row-pure bf16 rounding
  // are exactly what keeps branch-width batching invisible.
  for (const auto v : kReduced) {
    ASSERT_TRUE(tk::set_variant(v).ok());
    const auto indep = Forecast(113, core::DecodeMode::kIndependent);
    const auto tree = Forecast(113, core::DecodeMode::kTree);
    ASSERT_FALSE(indep.empty());
    ASSERT_EQ(indep.size(), tree.size());
    for (const auto& [car_id, m] : indep) {
      const auto& n = tree.at(car_id);
      for (std::size_t i = 0; i < m.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(m.flat()[i]),
                  std::bit_cast<std::uint64_t>(n.flat()[i]))
            << tk::variant_name(v) << " car " << car_id;
      }
    }
  }
}

TEST_F(QuantForecast, CalibrationPassRecordsEveryGemmTensor) {
  ASSERT_TRUE(tk::set_variant(tk::Variant::kScalar).ok());
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "quanttest");
  const auto calib = core::calibrate_forecaster(f, *race_, 50, 4, 6);
  // Every GEMM the decode touches must have a recorded, positive range:
  // both LSTM layers and both Gaussian head denses.
  for (const char* name :
       {"lstm0.wx", "lstm1.wx", "head.mu.weight", "head.sigma.weight"}) {
    ASSERT_EQ(calib.count(name), 1u) << name;
    EXPECT_GT(calib.at(name), 0.0) << name;
  }
  // calibrate_forecaster installs the result process-wide.
  EXPECT_EQ(tq::activation_calibration(), calib);

  // A calibrated int8 forecast stays inside the (looser) int8 fence and
  // remains tree == independent.
  ASSERT_TRUE(tk::set_variant(tk::Variant::kScalar).ok());
  const auto ref = Forecast(131, core::DecodeMode::kIndependent);
  ASSERT_TRUE(tk::set_variant(tk::Variant::kInt8).ok());
  const auto calibrated = Forecast(131, core::DecodeMode::kIndependent);
  EXPECT_LT(ForecastMae(ref, calibrated), 1.5);
  const auto tree = Forecast(131, core::DecodeMode::kTree);
  EXPECT_EQ(ForecastMae(calibrated, tree), 0.0);
}

}  // namespace

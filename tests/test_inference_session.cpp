// Inference-runtime equivalence suite: every InferenceSession must be
// bit-identical (exact double equality, not EXPECT_NEAR) to the training
// layer it serves, across batch sizes, and the steady-state decode loop
// must perform zero heap allocations (asserted via WorkspaceCounters).
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/ar_model.hpp"
#include "core/transformer_model.hpp"
#include "nn/attention.hpp"
#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/gaussian.hpp"
#include "nn/inference.hpp"
#include "nn/lstm.hpp"
#include "tensor/workspace.hpp"

namespace {

using namespace ranknet;
using tensor::ConstMatrixView;
using tensor::Matrix;
using tensor::MatrixView;
using tensor::Workspace;
using tensor::WorkspaceCounters;
using util::Rng;

constexpr std::size_t kBatches[] = {1, 7, 64};

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.flat()[i], b.flat()[i]) << "element " << i;
  }
}

TEST(DenseSession, BitIdenticalAcrossActivationsAndBatches) {
  using nn::Activation;
  for (auto act : {Activation::kNone, Activation::kRelu, Activation::kTanh,
                   Activation::kSigmoid}) {
    Rng rng(100 + static_cast<std::uint64_t>(act));
    nn::Dense layer(5, 9, rng, act);
    nn::DenseInferenceSession session(layer);
    EXPECT_EQ(session.input_dim(), 5u);
    EXPECT_EQ(session.output_dim(), 9u);
    for (std::size_t batch : kBatches) {
      const Matrix x = Matrix::randn(batch, 5, rng);
      const Matrix expected = layer.forward_inference(x);
      Workspace ws;
      ws.begin();
      MatrixView y = ws.take(batch, 9);
      session.apply(x, y);
      expect_bit_identical(y.to_matrix(), expected);
    }
  }
}

TEST(EmbeddingSession, GatherBitIdenticalAndBoundsChecked) {
  Rng rng(7);
  nn::Embedding layer(6, 4, rng);
  nn::EmbeddingInferenceSession session(layer);
  const std::vector<int> indices = {3, 0, 5, 3, 1};
  const Matrix expected = layer.forward_inference(indices);
  Workspace ws;
  ws.begin();
  MatrixView out = ws.take(indices.size(), 4);
  session.gather(indices, out);
  expect_bit_identical(out.to_matrix(), expected);

  const std::vector<int> bad = {6};
  MatrixView bad_out = ws.take(1, 4);
  EXPECT_THROW(session.gather(bad, bad_out), std::out_of_range);
}

TEST(GaussianSession, ForwardBitIdentical) {
  Rng rng(21);
  nn::GaussianHead head(10, 3, rng);
  nn::GaussianInferenceSession session(head);
  EXPECT_EQ(session.target_dim(), 3u);
  for (std::size_t batch : kBatches) {
    const Matrix h = Matrix::randn(batch, 10, rng);
    const auto expected = head.forward_inference(h);
    Workspace ws;
    ws.begin();
    MatrixView mu = ws.take(batch, 3);
    MatrixView sigma = ws.take(batch, 3);
    session.forward(h, mu, sigma);
    expect_bit_identical(mu.to_matrix(), expected.mu);
    expect_bit_identical(sigma.to_matrix(), expected.sigma);
    // Sigma floor must match the training head exactly.
    for (double s : sigma.flat()) EXPECT_GE(s, nn::GaussianHead::kSigmaFloor);
  }
}

TEST(GaussianSession, SampleDrawOrderMatchesHead) {
  Rng rng(22);
  nn::GaussianHead head(6, 2, rng);
  const Matrix h = Matrix::randn(5, 6, rng);
  const auto out = head.forward_inference(h);

  // Single-stream draws: identical seed, identical draw sequence.
  Rng a(99), b(99);
  const Matrix expected = nn::GaussianHead::sample(out, a);
  Workspace ws;
  ws.begin();
  MatrixView got = ws.take(5, 2);
  nn::GaussianInferenceSession::sample(out.mu, out.sigma, b, got);
  expect_bit_identical(got.to_matrix(), expected);

  // Per-row streams (partition invariance path).
  std::vector<Rng> rows_a, rows_b;
  for (std::uint64_t r = 0; r < 5; ++r) {
    rows_a.emplace_back(1000 + r);
    rows_b.emplace_back(1000 + r);
  }
  const Matrix expected_rows = nn::GaussianHead::sample(out, rows_a);
  MatrixView got_rows = ws.take(5, 2);
  nn::GaussianInferenceSession::sample(out.mu, out.sigma, rows_b, got_rows);
  expect_bit_identical(got_rows.to_matrix(), expected_rows);

  std::vector<Rng> too_few;
  too_few.emplace_back(1);
  MatrixView sink = ws.take(5, 2);
  EXPECT_THROW(
      nn::GaussianInferenceSession::sample(out.mu, out.sigma, too_few, sink),
      std::invalid_argument);
}

TEST(LstmSession, StepBitIdenticalToLayerStepAcrossBatches) {
  Rng rng(33);
  nn::LstmLayer layer(4, 8, rng);
  for (std::size_t batch : kBatches) {
    // Training path: repeated single steps carrying state.
    nn::LstmState state(batch, 8);
    Workspace ws;
    ws.begin();
    nn::LstmInferenceSession session(layer, batch, ws);
    session.reset_state();
    for (int t = 0; t < 6; ++t) {
      const Matrix x = Matrix::randn(batch, 4, rng);
      const Matrix h_ref = layer.step(x, state);
      session.set_input(x);
      session.step();
      expect_bit_identical(session.h().to_matrix(), h_ref);
      expect_bit_identical(session.c().to_matrix(), state.c);
    }
  }
}

TEST(LstmSession, MatchesTrainingFullSequenceForward) {
  Rng rng(34);
  nn::LstmLayer layer(3, 5, rng);
  const std::size_t batch = 7;
  std::vector<Matrix> xs;
  for (int t = 0; t < 4; ++t) xs.push_back(Matrix::randn(batch, 3, rng));
  const auto hs = layer.forward(xs);

  Workspace ws;
  ws.begin();
  nn::LstmInferenceSession session(layer, batch, ws);
  session.reset_state();
  for (std::size_t t = 0; t < xs.size(); ++t) {
    session.set_input(xs[t]);
    session.step();
    expect_bit_identical(session.h().to_matrix(), hs[t]);
  }
}

TEST(LstmSession, LoadStoreStateRoundTripsAndXRowPacksInput) {
  Rng rng(35);
  nn::LstmLayer layer(4, 6, rng);
  const std::size_t batch = 3;
  nn::LstmState state(batch, 6);
  state.h = Matrix::randn(batch, 6, rng);
  state.c = Matrix::randn(batch, 6, rng);

  Workspace ws;
  ws.begin();
  nn::LstmInferenceSession session(layer, batch, ws);
  session.load_state(state);

  nn::LstmState ref = state;
  const Matrix x = Matrix::randn(batch, 4, rng);
  const Matrix h_ref = layer.step(x, ref);

  // Fill the input via the per-row packing span instead of set_input.
  for (std::size_t r = 0; r < batch; ++r) {
    auto row = session.x_row(r);
    for (std::size_t c = 0; c < 4; ++c) row[c] = x(r, c);
  }
  session.step();
  expect_bit_identical(session.h().to_matrix(), h_ref);

  nn::LstmState out;
  session.store_state(out);
  expect_bit_identical(out.h, ref.h);
  expect_bit_identical(out.c, ref.c);

  nn::LstmState wrong(batch + 1, 6);
  EXPECT_THROW(session.load_state(wrong), std::invalid_argument);
}

TEST(AttentionSession, BitIdenticalToForwardInference) {
  Rng rng(44);
  nn::MultiHeadSelfAttention layer(8, 2, rng);
  const std::size_t seq_len = 5;
  for (std::size_t batch : {1u, 3u}) {
    const std::size_t rows = batch * seq_len;
    const Matrix x = Matrix::randn(rows, 8, rng);
    const Matrix expected = layer.forward_inference(x, seq_len);
    Workspace ws;
    ws.begin();
    nn::AttentionInferenceSession session(layer, rows, seq_len, ws);
    MatrixView y = ws.take(rows, 8);
    session.forward(x, y);
    expect_bit_identical(y.to_matrix(), expected);
  }
  Workspace ws;
  ws.begin();
  EXPECT_THROW(nn::AttentionInferenceSession(layer, 7, seq_len, ws),
               std::invalid_argument);
}

TEST(TransformerBlockSession, BitIdenticalToForwardInference) {
  Rng rng(45);
  nn::TransformerBlock block(8, 2, 16, rng);
  const std::size_t seq_len = 4;
  const std::size_t rows = 3 * seq_len;
  const Matrix x = Matrix::randn(rows, 8, rng);
  const Matrix expected = block.forward_inference(x, seq_len);
  Workspace ws;
  ws.begin();
  nn::TransformerBlockSession session(block, rows, seq_len, ws);
  MatrixView y = ws.take(rows, 8);
  session.forward(x, y);
  expect_bit_identical(y.to_matrix(), expected);
}

// ---- zero-allocation steady state ---------------------------------------

core::SeqModelConfig small_config() {
  core::SeqModelConfig config;
  config.cov_dim = 3;
  config.target_dim = 1;
  config.hidden = 8;
  config.num_layers = 2;
  config.embed_dim = 2;
  config.vocab = 5;
  return config;
}

Matrix run_sample_forward(const core::LstmSeqModel& model, std::size_t rows,
                          int horizon, std::uint64_t seed) {
  core::LstmSeqModel::StackState state;
  for (std::size_t l = 0; l < model.config().num_layers; ++l) {
    state.emplace_back(rows, model.config().hidden);
  }
  std::vector<std::vector<double>> z_prev(rows, std::vector<double>{12.0});
  std::vector<std::vector<std::vector<double>>> covs(
      rows, std::vector<std::vector<double>>(
                static_cast<std::size_t>(horizon),
                std::vector<double>(model.config().cov_dim, 0.25)));
  std::vector<int> car_index(rows, 1);
  Rng rng(seed);
  return model.sample_forward(state, z_prev, covs, car_index, horizon, rng);
}

TEST(ZeroAlloc, LstmDecodeLoopSteadyState) {
  core::LstmSeqModel model(small_config());
  // Two warm-up calls: the first grows the thread-local arena; the second
  // runs warm, so its (reused) epoch is what the measured window records.
  run_sample_forward(model, 16, 5, 1);
  run_sample_forward(model, 16, 5, 2);

  const auto before = WorkspaceCounters::instance().snapshot();
  const Matrix out = run_sample_forward(model, 16, 5, 3);
  const auto after = WorkspaceCounters::instance().snapshot();

  EXPECT_EQ(out.rows(), 16u);
  EXPECT_EQ(after.block_allocs, before.block_allocs)
      << "steady-state decode loop allocated arena blocks";
  EXPECT_GT(after.takes, before.takes);
  EXPECT_GT(after.epochs, before.epochs);
  EXPECT_EQ(after.reused_epochs - before.reused_epochs,
            after.epochs - before.epochs)
      << "an epoch in the steady-state window had to grow the arena";
}

TEST(ZeroAlloc, LstmDecodeDeterministicAcrossArenaStates) {
  // Same seed, cold arena vs warm arena: byte-identical output (the arena
  // is scratch only; values never leak across epochs).
  core::LstmSeqModel model(small_config());
  const Matrix first = run_sample_forward(model, 4, 6, 42);
  const Matrix again = run_sample_forward(model, 4, 6, 42);
  expect_bit_identical(first, again);
}

TEST(ZeroAlloc, TransformerSampleForecastSteadyState) {
  core::TransformerConfig config;
  config.cov_dim = 3;
  config.target_dim = 1;
  config.model_dim = 8;
  config.heads = 2;
  config.blocks = 2;
  config.ffn_dim = 16;
  config.embed_dim = 2;
  config.vocab = 5;
  core::TransformerSeqModel model(config);

  const std::size_t rows = 3, ctx = 6;
  const int horizon = 4;
  std::vector<std::vector<double>> history(rows,
                                           std::vector<double>(ctx, 10.0));
  std::vector<std::vector<std::vector<double>>> covs(
      rows, std::vector<std::vector<double>>(
                ctx + static_cast<std::size_t>(horizon),
                std::vector<double>(config.cov_dim, 0.5)));
  std::vector<int> car_index(rows, 2);

  const auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    return model.sample_forecast(history, covs, car_index, horizon, rng);
  };
  run(1);
  run(2);
  const auto before = WorkspaceCounters::instance().snapshot();
  const Matrix out = run(3);
  const auto after = WorkspaceCounters::instance().snapshot();
  EXPECT_EQ(out.cols(), static_cast<std::size_t>(horizon));
  EXPECT_EQ(after.block_allocs, before.block_allocs);
  EXPECT_EQ(after.reused_epochs - before.reused_epochs,
            after.epochs - before.epochs);
}

}  // namespace

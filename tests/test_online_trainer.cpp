// Unit + property tests of the online learning loop's pieces: the
// champion/challenger gate (monotone admission, NaN hostility, check
// order), the shadow scorer, the OnlineTrainer lifecycle against a fake
// promotion target (promote / reject / fit-fail / probation rollback /
// async == sync), fuzz + adversarial coverage of the v3 artifact parser on
// trainer-emitted artifacts, the registry-level rollback byte-restore
// property, and the incremental LSTM refit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/online_gate.hpp"
#include "core/online_trainer.hpp"
#include "core/training.hpp"
#include "nn/serialize.hpp"
#include "serve/affine_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/online_loop.hpp"
#include "simulator/season.hpp"
#include "util/string_util.hpp"

namespace {

using namespace ranknet;
using core::ChampionChallengerGate;
using core::OnlineGateConfig;
using core::ShadowMetrics;
using core::TraceEvent;

// ---------------------------------------------------------------------------
// Gate properties
// ---------------------------------------------------------------------------

ShadowMetrics random_metrics(util::Rng& rng) {
  ShadowMetrics m;
  m.probe_points = static_cast<std::size_t>(rng.uniform_int(0, 40));
  m.nll = rng.uniform(-2.0, 8.0);
  m.mae = rng.uniform(0.0, 10.0);
  m.prediction_failure_rate = rng.uniform(0.0, 1.0);
  m.sigma_saturation_rate = rng.uniform(0.0, 1.0);
  m.latency_seconds = rng.uniform(0.0, 1.0);
  return m;
}

/// Strictly improve every axis of `m` (more evidence, lower everything).
ShadowMetrics dominate(const ShadowMetrics& m, util::Rng& rng) {
  ShadowMetrics a = m;
  a.probe_points = m.probe_points + static_cast<std::size_t>(
                                        rng.uniform_int(0, 8));
  a.nll = m.nll - rng.uniform(0.0, 3.0);
  a.mae = m.mae * rng.uniform(0.0, 1.0);
  a.prediction_failure_rate = m.prediction_failure_rate * rng.uniform(0.0, 1.0);
  a.sigma_saturation_rate = m.sigma_saturation_rate * rng.uniform(0.0, 1.0);
  a.latency_seconds = m.latency_seconds * rng.uniform(0.0, 1.0);
  return a;
}

TEST(OnlineGate, AdmissionIsMonotoneInChallengerQuality) {
  // Property: if some challenger B passes the gate, any challenger A that
  // dominates B (better or equal on every axis) must pass too — a gate
  // that could punish improvement would make promotion order incoherent.
  util::Rng rng(0x6a7e);
  std::size_t passes = 0;
  for (int iter = 0; iter < 500; ++iter) {
    OnlineGateConfig cfg;
    cfg.max_nll_delta = rng.uniform(-1.0, 1.0);
    cfg.max_mae_delta = rng.uniform(-1.0, 1.0);
    cfg.max_prediction_failure_rate = rng.uniform(0.0, 1.0);
    cfg.max_sigma_saturation_rate = rng.uniform(0.0, 1.0);
    cfg.max_latency_factor = rng.bernoulli(0.5) ? rng.uniform(0.5, 3.0) : 0.0;
    cfg.min_probe_points = static_cast<std::size_t>(rng.uniform_int(0, 10));
    ChampionChallengerGate gate(cfg);

    const ShadowMetrics champion = random_metrics(rng);
    const ShadowMetrics b = random_metrics(rng);
    const ShadowMetrics a = dominate(b, rng);
    if (gate.evaluate(champion, b).promote) {
      ++passes;
      EXPECT_TRUE(gate.evaluate(champion, a).promote)
          << "dominating challenger rejected where the dominated one passed";
    }
  }
  EXPECT_GT(passes, 10u) << "property vacuous: gate never passed anything";
}

TEST(OnlineGate, NanChallengerMetricsNeverPromote) {
  ChampionChallengerGate gate(OnlineGateConfig{
      .max_nll_delta = 1e9,
      .max_mae_delta = 1e9,
      .max_prediction_failure_rate = 1.0,
      .max_sigma_saturation_rate = 1.0,
      .max_latency_factor = 1e9,
      .min_probe_points = 1});
  ShadowMetrics champion;
  champion.probe_points = 10;
  champion.latency_seconds = 1.0;
  ShadowMetrics good;
  good.probe_points = 10;
  good.latency_seconds = 0.5;
  ASSERT_TRUE(gate.evaluate(champion, good).promote);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int field = 0; field < 5; ++field) {
    ShadowMetrics bad = good;
    switch (field) {
      case 0: bad.nll = nan; break;
      case 1: bad.mae = nan; break;
      case 2: bad.prediction_failure_rate = nan; break;
      case 3: bad.sigma_saturation_rate = nan; break;
      case 4: bad.latency_seconds = nan; break;
    }
    EXPECT_FALSE(gate.evaluate(champion, bad).promote)
        << "NaN in field " << field << " slipped the gate";
  }
}

TEST(OnlineGate, FirstFailingCheckNamesItself) {
  OnlineGateConfig cfg;  // all-strict defaults
  cfg.min_probe_points = 5;
  ChampionChallengerGate gate(cfg);
  ShadowMetrics champ;
  champ.probe_points = 10;
  champ.nll = 1.0;
  champ.mae = 2.0;

  ShadowMetrics c;
  c.probe_points = 1;
  EXPECT_EQ(gate.evaluate(champ, c).reason, "probe_points");
  c.probe_points = 10;
  c.prediction_failure_rate = 0.5;
  EXPECT_EQ(gate.evaluate(champ, c).reason, "failure_rate");
  c.prediction_failure_rate = 0.0;
  c.sigma_saturation_rate = 2.0;
  EXPECT_EQ(gate.evaluate(champ, c).reason, "saturation");
  c.sigma_saturation_rate = 0.0;
  c.nll = 1.5;
  EXPECT_EQ(gate.evaluate(champ, c).reason, "nll");
  c.nll = 0.5;
  c.mae = 3.0;
  EXPECT_EQ(gate.evaluate(champ, c).reason, "mae");
  c.mae = 1.0;
  EXPECT_EQ(gate.evaluate(champ, c).reason, "pass");
  EXPECT_TRUE(gate.evaluate(champ, c).promote);
}

// ---------------------------------------------------------------------------
// Shadow scorer
// ---------------------------------------------------------------------------

telemetry::RaceWindow make_window(int races, int laps = 40) {
  telemetry::RaceWindow window;
  for (int k = 0; k < races; ++k) {
    window.push_back(std::make_shared<const telemetry::RaceLog>(
        sim::simulate_race({"Indy500", 2015 + k, laps, sim::Usage::kTest})));
  }
  return window;
}

util::ClockFn counting_clock(std::shared_ptr<double> t, double step = 1e-3) {
  return [t, step] {
    *t += step;
    return *t;
  };
}

core::ProbeConfig small_probe() {
  core::ProbeConfig probe;
  probe.origin_laps = {20, 30};
  probe.horizon = 5;
  probe.num_samples = 4;
  probe.seed = 7;
  return probe;
}

TEST(ShadowScorer, DeterministicAndRanksModelQuality) {
  const auto window = make_window(2);
  auto t = std::make_shared<double>(0.0);
  core::ShadowScorer scorer(small_probe(), counting_clock(t));

  serve::AffineRankModel good(1.0, 0.0);
  serve::AffineRankModel biased(1.0, 6.0);
  const auto m_good_1 = scorer.score(good, window);
  const auto m_good_2 = scorer.score(good, window);
  const auto m_biased = scorer.score(biased, window);

  EXPECT_GT(m_good_1.probe_points, 0u);
  EXPECT_EQ(m_good_1.probe_points, m_good_2.probe_points);
  EXPECT_EQ(m_good_1.nll, m_good_2.nll);
  EXPECT_EQ(m_good_1.mae, m_good_2.mae);
  EXPECT_EQ(m_good_1.to_string().substr(0, m_good_1.to_string().rfind("lat=")),
            m_good_2.to_string().substr(0,
                                        m_good_2.to_string().rfind("lat=")));
  // Scripted clock: every score is exactly two reads, so latency is the
  // scripted step regardless of real elapsed time.
  EXPECT_DOUBLE_EQ(m_good_1.latency_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(m_biased.latency_seconds, 1e-3);
  // A 6-rank bias must cost 6 MAE points against the same probe.
  EXPECT_GT(m_biased.mae, m_good_1.mae + 3.0);
  EXPECT_GT(m_biased.nll, m_good_1.nll);
}

TEST(ShadowScorer, ThrowingForecasterIsTotalFailure) {
  class Thrower : public core::RaceForecaster {
   public:
    std::string name() const override { return "thrower"; }
    core::RaceSamples forecast(const telemetry::RaceLog&, int, int, int,
                               util::Rng&) override {
      throw std::runtime_error("model exploded");
    }
  };
  const auto window = make_window(1);
  core::ShadowScorer scorer(small_probe(),
                            counting_clock(std::make_shared<double>(0.0)));
  Thrower thrower;
  const auto m = scorer.score(thrower, window);
  EXPECT_EQ(m.probe_points, 0u);
  EXPECT_DOUBLE_EQ(m.prediction_failure_rate, 1.0);
}

// ---------------------------------------------------------------------------
// OnlineTrainer lifecycle against a fake target
// ---------------------------------------------------------------------------

/// Shared state between the controllable fitter, the fake target, and the
/// champion view — a miniature registry.
struct FakeWorld {
  std::shared_ptr<core::RaceForecaster> active =
      std::make_shared<serve::AffineRankModel>(1.0, 5.0);
  std::shared_ptr<core::RaceForecaster> prior;
  std::shared_ptr<core::RaceForecaster> last_fitted;
  std::uint64_t version = 1;
  double fitter_offset = 0.0;   // quality knob of the next candidate
  bool fail_fit = false;
  bool fail_promote = false;
};

class FakeTarget : public core::PromotionTarget {
 public:
  explicit FakeTarget(std::shared_ptr<FakeWorld> world)
      : world_(std::move(world)) {}
  util::Result<std::uint64_t> promote(const std::string&) override {
    if (world_->fail_promote) {
      return util::Status::unavailable("target refused the install");
    }
    world_->prior = world_->active;
    world_->active = world_->last_fitted;
    return ++world_->version;
  }
  util::Result<std::uint64_t> rollback(const std::string&) override {
    if (!world_->prior) {
      return util::Status::failed_precondition("nothing to roll back to");
    }
    world_->active = world_->prior;
    world_->prior = nullptr;
    return ++world_->version;
  }

 private:
  std::shared_ptr<FakeWorld> world_;
};

core::CandidateFitter fake_fitter(std::shared_ptr<FakeWorld> world) {
  return [world](const telemetry::RaceWindow&, std::uint64_t,
                 const std::string& path)
             -> util::Result<core::FittedCandidate> {
    if (world->fail_fit) {
      return util::Status::unavailable("fit diverged");
    }
    serve::AffineRankModel::save_artifact(path, 1.0, world->fitter_offset);
    world->last_fitted =
        std::make_shared<serve::AffineRankModel>(1.0, world->fitter_offset);
    core::FittedCandidate out;
    out.forecaster = world->last_fitted;
    out.artifact_path = path;
    out.summary = util::format("fake offset=%.3g", world->fitter_offset);
    return out;
  };
}

struct TrainerRig {
  std::shared_ptr<FakeWorld> world = std::make_shared<FakeWorld>();
  telemetry::ReplayBuffer replay{{.capacity = 8}};
  FakeTarget target{world};
  std::unique_ptr<core::OnlineTrainer> trainer;

  explicit TrainerRig(std::size_t races, core::OnlineTrainerConfig cfg = {}) {
    cfg.train_window = 1;
    cfg.probe_window = 1;
    cfg.probe = small_probe();
    cfg.artifact_dir = "/tmp";
    trainer = std::make_unique<core::OnlineTrainer>(
        cfg, replay, fake_fitter(world), target,
        [w = world] { return w->active; });
    trainer->set_clock(counting_clock(std::make_shared<double>(0.0)));
    for (std::size_t k = 0; k < races; ++k) {
      replay.push(sim::simulate_race(
          {"Indy500", 2015 + static_cast<int>(k), 40, sim::Usage::kTest}));
    }
  }
};

TEST(OnlineTrainer, PromotesStrictlyBetterRejectsStrictlyWorse) {
  core::OnlineTrainerConfig cfg;
  cfg.probation_steps = 0;
  TrainerRig rig(2, cfg);
  // The initial champion is 5 ranks biased; the honest candidate (offset 0)
  // strictly beats it and must promote.
  rig.world->fitter_offset = 0.0;
  auto e = rig.trainer->step();
  EXPECT_EQ(e.action, TraceEvent::Action::kPromoted) << e.detail;
  EXPECT_EQ(e.version, 2u);
  EXPECT_EQ(rig.world->active, rig.world->last_fitted);

  // A candidate 10 ranks worse than the new champion must be rejected and
  // must not disturb the active model.
  const auto active_before = rig.world->active;
  rig.world->fitter_offset = 10.0;
  e = rig.trainer->step();
  EXPECT_EQ(e.action, TraceEvent::Action::kRejectedGate) << e.detail;
  EXPECT_EQ(rig.world->active, active_before);
}

TEST(OnlineTrainer, SkipsUntilEnoughRacesBuffered) {
  TrainerRig rig(0);
  EXPECT_EQ(rig.trainer->step().action, TraceEvent::Action::kSkipped);
  rig.replay.push(sim::simulate_race({"Indy500", 2015, 40, sim::Usage::kTest}));
  EXPECT_EQ(rig.trainer->step().action, TraceEvent::Action::kSkipped)
      << "one race cannot fill train + probe windows";
}

TEST(OnlineTrainer, FitAndTargetFailuresAreBookedNotFatal) {
  core::OnlineTrainerConfig cfg;
  cfg.probation_steps = 0;
  TrainerRig rig(2, cfg);
  rig.world->fail_fit = true;
  EXPECT_EQ(rig.trainer->step().action, TraceEvent::Action::kFitFailed);

  rig.world->fail_fit = false;
  rig.world->fail_promote = true;
  const auto active_before = rig.world->active;
  EXPECT_EQ(rig.trainer->step().action, TraceEvent::Action::kRejectedTarget);
  EXPECT_EQ(rig.world->active, active_before);

  rig.world->fail_promote = false;
  EXPECT_EQ(rig.trainer->step().action, TraceEvent::Action::kPromoted);
}

TEST(OnlineTrainer, ProbationRollsBackDegradedPromotionAndRestoresChampion) {
  core::OnlineTrainerConfig cfg;
  cfg.probation_steps = 2;
  cfg.rollback_mae_margin = 0.5;
  cfg.gate.max_nll_delta = 1e9;  // permissive: let the degraded model in
  cfg.gate.max_mae_delta = 1e9;
  cfg.gate.max_prediction_failure_rate = 1.0;
  TrainerRig rig(2, cfg);
  const auto original = rig.world->active;

  rig.world->fitter_offset = 50.0;  // grossly degraded candidate
  auto e = rig.trainer->step();
  ASSERT_EQ(e.action, TraceEvent::Action::kPromoted) << e.detail;
  EXPECT_EQ(rig.trainer->probation_remaining(), 2u);
  EXPECT_NE(rig.world->active, original);

  // Next step: the probation check scores the displaced champion against
  // the degraded one on the fresh probe and must roll back — restoring the
  // exact displaced object (bytes included, trivially).
  e = rig.trainer->step();
  EXPECT_EQ(e.action, TraceEvent::Action::kRolledBack) << e.detail;
  EXPECT_EQ(rig.world->active, original);
  EXPECT_EQ(rig.trainer->probation_remaining(), 0u);
}

TEST(OnlineTrainer, HealthyPromotionSurvivesProbation) {
  core::OnlineTrainerConfig cfg;
  cfg.probation_steps = 2;
  TrainerRig rig(2, cfg);
  rig.world->fitter_offset = 0.0;
  ASSERT_EQ(rig.trainer->step().action, TraceEvent::Action::kPromoted);
  const auto promoted = rig.world->active;
  // Two probation steps with the fitter disabled, so each step runs only
  // the probation check: the displaced (worse) champion never wins, the
  // window closes, and the promoted model keeps serving. (With the fitter
  // live, an equal-quality refit legitimately re-promotes under the
  // delta <= 0 gate and re-arms probation — not what this test is about.)
  rig.world->fail_fit = true;
  EXPECT_EQ(rig.trainer->step().action, TraceEvent::Action::kFitFailed);
  EXPECT_EQ(rig.trainer->probation_remaining(), 1u);
  EXPECT_EQ(rig.trainer->step().action, TraceEvent::Action::kFitFailed);
  EXPECT_EQ(rig.trainer->probation_remaining(), 0u);
  EXPECT_EQ(rig.world->active, promoted);
}

TEST(OnlineTrainer, AsyncWorkerTraceMatchesSyncTrace) {
  core::OnlineTrainerConfig cfg;
  cfg.probation_steps = 1;
  auto run_sync = [&] {
    TrainerRig rig(2, cfg);
    rig.world->fitter_offset = 0.0;
    for (int i = 0; i < 4; ++i) (void)rig.trainer->step();
    return rig.trainer->trace_string();
  };
  auto run_async = [&] {
    TrainerRig rig(2, cfg);
    rig.world->fitter_offset = 0.0;
    rig.trainer->start();
    for (int i = 0; i < 4; ++i) rig.trainer->notify();
    rig.trainer->stop();  // drains all pending steps before joining
    return rig.trainer->trace_string();
  };
  const auto sync_trace = run_sync();
  EXPECT_FALSE(sync_trace.empty());
  EXPECT_EQ(sync_trace, run_async());
}

// ---------------------------------------------------------------------------
// v3 artifact parser fuzz on trainer-emitted artifacts
// ---------------------------------------------------------------------------

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Emit a genuine trainer artifact: the affine fitter's v3 output with a
/// real calibration section.
std::string emit_trainer_artifact(const std::string& path) {
  auto fitter = serve::make_affine_fitter();
  const auto window = make_window(2);
  auto fitted = fitter(window, 1, path);
  EXPECT_TRUE(fitted.ok());
  return path;
}

/// Assert that loading `path` fails and leaves the model's coefficients
/// exactly as they were — the staged-commit contract.
void expect_rejected_without_half_install(const std::string& path,
                                          const char* what) {
  serve::AffineRankModel model(2.5, -1.5);
  const auto st = model.load_artifact(path);
  EXPECT_FALSE(st.ok()) << what << ": corrupt artifact loaded successfully";
  EXPECT_DOUBLE_EQ(model.scale(), 2.5) << what;
  EXPECT_DOUBLE_EQ(model.offset(), -1.5) << what;
}

TEST(V3ArtifactFuzz, EveryTruncationIsRejectedWithoutHalfInstall) {
  const std::string good = "/tmp/ranknet_v3_fuzz_base.bin";
  const std::string cut = "/tmp/ranknet_v3_fuzz_trunc.bin";
  emit_trainer_artifact(good);
  const auto clean = read_file(good);
  ASSERT_GT(clean.size(), 40u);
  for (std::size_t keep = 0; keep < clean.size(); ++keep) {
    write_file(cut, {clean.begin(),
                     clean.begin() + static_cast<std::ptrdiff_t>(keep)});
    expect_rejected_without_half_install(
        cut, ("truncated to " + std::to_string(keep)).c_str());
  }
  // The untouched artifact still loads — the rejections were earned.
  serve::AffineRankModel model;
  EXPECT_TRUE(model.load_artifact(good).ok());
}

TEST(V3ArtifactFuzz, RandomBitFlipsAreRejectedWithoutHalfInstall) {
  const std::string good = "/tmp/ranknet_v3_fuzz_base2.bin";
  const std::string flip = "/tmp/ranknet_v3_fuzz_flip.bin";
  emit_trainer_artifact(good);
  const auto clean = read_file(good);
  util::Rng rng(0xf11b);
  for (int iter = 0; iter < 256; ++iter) {
    auto corrupt = clean;
    const auto byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1));
    const int bit = static_cast<int>(rng.uniform_int(0, 7));
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
    write_file(flip, corrupt);
    expect_rejected_without_half_install(
        flip,
        ("bit " + std::to_string(bit) + " of byte " + std::to_string(byte))
            .c_str());
  }
}

/// Rewrite a v2+ artifact's payload with an HONESTLY regenerated size and
/// checksum — the adversary who can recompute FNV-1a. Only structural
/// validation can catch these.
void rewrite_payload(const std::string& path, std::vector<char> payload) {
  const auto file = read_file(path);
  ASSERT_GE(file.size(), 28u);
  std::vector<char> out(file.begin(), file.begin() + 12);  // magic + version
  const std::uint64_t size = payload.size();
  const std::uint64_t checksum =
      util::fnv1a(std::string_view(payload.data(), payload.size()));
  const auto append = [&out](const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    out.insert(out.end(), c, c + n);
  };
  append(&size, sizeof(size));
  append(&checksum, sizeof(checksum));
  out.insert(out.end(), payload.begin(), payload.end());
  write_file(path, out);
}

TEST(V3ArtifactFuzz, RegeneratedChecksumAdversariesAreStillRejected) {
  const std::string good = "/tmp/ranknet_v3_fuzz_base3.bin";
  const std::string adv = "/tmp/ranknet_v3_fuzz_adv.bin";
  emit_trainer_artifact(good);
  const auto file = read_file(good);
  const std::vector<char> payload(file.begin() + 28, file.end());

  // (a) trailing garbage after the calibration section, checksum honest:
  // pre-strict-tail parsing this loaded fine (bytes silently ignored).
  {
    auto p = payload;
    p.push_back('\x5a');
    p.push_back('\x5a');
    write_file(adv, file);
    rewrite_payload(adv, p);
    expect_rejected_without_half_install(adv, "trailing garbage");
  }
  // (b) calibration entry count shrunk to 0: the real entry's bytes become
  // trailing garbage — strict tail parsing must refuse.
  {
    auto p = payload;
    // Payload layout here: count(8) name(8+6) matrix(rows 8 + cols 8 +
    // 2*8 data) then calibration count. Locate the calibration count by
    // searching from the end: entry = name len(8) + "affine"(6) + absmax(8)
    // + zero(8) = 30 bytes, count sits 8 bytes before it.
    const std::size_t calib_count_at = p.size() - 30 - 8;
    std::uint64_t zero = 0;
    std::memcpy(p.data() + calib_count_at, &zero, sizeof(zero));
    write_file(adv, file);
    rewrite_payload(adv, p);
    expect_rejected_without_half_install(adv, "shrunk calibration count");
  }
  // (c) nonzero int8 zero point: symmetric-only runtime must refuse.
  {
    auto p = payload;
    double zp = 1.0;
    std::memcpy(p.data() + p.size() - sizeof(double), &zp, sizeof(zp));
    write_file(adv, file);
    rewrite_payload(adv, p);
    expect_rejected_without_half_install(adv, "asymmetric zero point");
  }
  // (d) calibration count inflated: the declared extra entry truncates.
  {
    auto p = payload;
    const std::size_t calib_count_at = p.size() - 30 - 8;
    std::uint64_t two = 2;
    std::memcpy(p.data() + calib_count_at, &two, sizeof(two));
    write_file(adv, file);
    rewrite_payload(adv, p);
    expect_rejected_without_half_install(adv, "inflated calibration count");
  }
}

TEST(V3ArtifactFuzz, RegistrySwapStaysAtomicUnderCorruptArtifacts) {
  const auto probe_race =
      sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest});
  serve::RegistryConfig cfg;
  cfg.engine_threads = 0;
  serve::ModelRegistry registry(
      [](const std::string& path)
          -> util::Result<std::shared_ptr<core::RaceForecaster>> {
        auto model = std::make_shared<serve::AffineRankModel>();
        if (auto st = model->load_artifact(path); !st.ok()) return st;
        return std::shared_ptr<core::RaceForecaster>(std::move(model));
      },
      cfg);
  const std::string good = "/tmp/ranknet_v3_fuzz_reg_good.bin";
  const std::string cand = "/tmp/ranknet_v3_fuzz_reg_cand.bin";
  serve::AffineRankModel::save_artifact(good, 1.0, 0.0);
  ASSERT_TRUE(registry.init(good).ok());

  emit_trainer_artifact(cand);
  const auto clean = read_file(cand);
  util::Rng rng(0xabad);
  for (int iter = 0; iter < 32; ++iter) {
    auto corrupt = clean;
    if (iter % 2 == 0) {
      corrupt.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1)));
    } else {
      const auto byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1));
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
    }
    write_file(cand, corrupt);
    const auto outcome = registry.swap(cand);
    EXPECT_EQ(outcome.action, serve::wire::SwapAction::kRejected);
    EXPECT_EQ(registry.active_version(), 1u)
        << "corrupt candidate disturbed the active model";
  }
  // The intact trainer artifact promotes: the registry factory accepts the
  // v3 calibration section end to end.
  write_file(cand, clean);
  EXPECT_EQ(registry.swap(cand).action, serve::wire::SwapAction::kPromoted);
}

// ---------------------------------------------------------------------------
// Rollback byte-restore property at the registry level
// ---------------------------------------------------------------------------

TEST(RollbackProperty, RegistryRollbackAlwaysRestoresPriorChampionBytes) {
  const auto race = sim::simulate_race({"Indy500", 2018, 60, sim::Usage::kTest});
  serve::RegistryConfig cfg;
  cfg.engine_threads = 0;
  serve::ModelRegistry registry(
      [](const std::string& path)
          -> util::Result<std::shared_ptr<core::RaceForecaster>> {
        auto model = std::make_shared<serve::AffineRankModel>();
        if (auto st = model->load_artifact(path); !st.ok()) return st;
        return std::shared_ptr<core::RaceForecaster>(std::move(model));
      },
      cfg);
  const std::string a = "/tmp/ranknet_rb_prop_a.bin";
  const std::string b = "/tmp/ranknet_rb_prop_b.bin";

  auto serve_bytes = [&] {
    auto model = registry.active();
    util::Rng rng(99);
    const auto samples = model->engine->forecast(race, 25, 4, 4, rng);
    std::vector<double> flat;
    for (const auto& [car, m] : samples) {
      const auto med = core::median_trajectory(m);
      flat.insert(flat.end(), med.begin(), med.end());
    }
    return flat;
  };

  util::Rng rng(0x0b0b);
  serve::AffineRankModel::save_artifact(a, 1.0, 0.0);
  ASSERT_TRUE(registry.init(a).ok());
  for (int iter = 0; iter < 20; ++iter) {
    // Promote a random champion, snapshot its serving bytes, promote a
    // second random challenger, roll back — the snapshot must return
    // bit-for-bit, whatever the coefficients were.
    serve::AffineRankModel::save_artifact(a, rng.uniform(0.5, 2.0),
                                          rng.uniform(-5.0, 5.0));
    ASSERT_EQ(registry.swap(a).action, serve::wire::SwapAction::kPromoted);
    const auto champion_bytes = serve_bytes();

    serve::AffineRankModel::save_artifact(b, rng.uniform(0.5, 2.0),
                                          rng.uniform(-5.0, 5.0));
    ASSERT_EQ(registry.swap(b).action, serve::wire::SwapAction::kPromoted);
    ASSERT_EQ(registry.rollback("property test").action,
              serve::wire::SwapAction::kRolledBack);

    const auto restored = serve_bytes();
    ASSERT_EQ(restored.size(), champion_bytes.size());
    EXPECT_EQ(std::memcmp(restored.data(), champion_bytes.data(),
                          restored.size() * sizeof(double)),
              0)
        << "rollback " << iter << " did not restore the champion's bytes";
  }
}

// ---------------------------------------------------------------------------
// Incremental LSTM refit
// ---------------------------------------------------------------------------

TEST(IncrementalLstm, RefitReducesNllDeterministically) {
  std::vector<telemetry::RaceLog> races;
  for (int k = 0; k < 2; ++k) {
    races.push_back(
        sim::simulate_race({"Indy500", 2016 + k, 40, sim::Usage::kTest}));
  }
  const features::CarVocab vocab(races);
  features::WindowConfig wcfg;
  wcfg.encoder_length = 12;
  wcfg.decoder_length = 2;
  wcfg.stride = 4;
  wcfg.covariates = {.race_status = false,
                     .age_features = false,
                     .context_features = false,
                     .shift_features = false};
  core::SeqModelConfig mcfg;
  mcfg.cov_dim = 0;
  mcfg.hidden = 8;
  mcfg.num_layers = 1;
  mcfg.embed_dim = 2;
  mcfg.vocab = vocab.size();

  core::IncrementalConfig icfg;
  icfg.steps = 12;
  icfg.lr = 1e-2;
  icfg.seed = 3;

  auto run = [&] {
    core::LstmSeqModel model(mcfg);
    model.set_scaler(core::fit_rank_scaler(races));
    return core::incremental_update_sequence_model(model, races, vocab, wcfg,
                                                   icfg);
  };
  const auto s1 = run();
  ASSERT_GT(s1.windows, 0u);
  EXPECT_GT(s1.steps_run, 0);
  EXPECT_LT(s1.nll_after, s1.nll_before)
      << "a dozen Adam steps from random init must reduce NLL";
  // Bitwise deterministic: same seed, same windows, same result.
  const auto s2 = run();
  EXPECT_EQ(s1.nll_before, s2.nll_before);
  EXPECT_EQ(s1.nll_after, s2.nll_after);
}

TEST(IncrementalLstm, FitterEmitsLoadableV3ArtifactAndLeavesBaseUntouched) {
  std::vector<telemetry::RaceLog> races;
  races.push_back(sim::simulate_race({"Indy500", 2016, 40, sim::Usage::kTest}));
  races.push_back(sim::simulate_race({"Indy500", 2017, 40, sim::Usage::kTest}));
  const features::CarVocab vocab(races);
  features::WindowConfig wcfg;
  wcfg.encoder_length = 12;
  wcfg.decoder_length = 2;
  wcfg.stride = 4;
  wcfg.covariates = {.race_status = false,
                     .age_features = false,
                     .context_features = false,
                     .shift_features = false};
  core::SeqModelConfig mcfg;
  mcfg.cov_dim = 0;
  mcfg.hidden = 8;
  mcfg.num_layers = 1;
  mcfg.embed_dim = 2;
  mcfg.vocab = vocab.size();

  auto base = std::make_shared<core::LstmSeqModel>(mcfg);
  base->set_scaler(core::fit_rank_scaler(races));
  std::vector<tensor::Matrix> base_params;
  for (auto* p : base->params()) base_params.push_back(p->value);

  core::IncrementalConfig icfg;
  icfg.steps = 4;
  icfg.lr = 1e-2;
  auto fitter = core::make_incremental_lstm_fitter(
      base, vocab, wcfg, icfg, core::StatusSource::kOracle);

  telemetry::RaceWindow window;
  for (const auto& r : races) {
    window.push_back(std::make_shared<const telemetry::RaceLog>(r));
  }
  const std::string path = "/tmp/ranknet_incr_lstm.bin";
  auto fitted = fitter(window, 5, path);
  ASSERT_TRUE(fitted.ok()) << fitted.status().to_string();
  EXPECT_NE(fitted.value().forecaster, nullptr);
  EXPECT_FALSE(fitted.value().summary.empty());

  // The emitted artifact loads back into a same-shape model.
  core::LstmSeqModel reloaded(mcfg);
  EXPECT_TRUE(nn::try_load_params(path, reloaded.params()).ok());

  // The base (serving) model's weights were never touched by the fit.
  auto params_now = base->params();
  for (std::size_t i = 0; i < params_now.size(); ++i) {
    const auto& before = base_params[i];
    const auto& after = params_now[i]->value;
    ASSERT_TRUE(after.same_shape(before));
    EXPECT_EQ(std::memcmp(after.data(), before.data(),
                          after.rows() * after.cols() * sizeof(double)),
              0)
        << "base model parameter " << i << " mutated by the fitter";
  }

  // Determinism: the same window + seed re-fits to the same summary.
  auto fitted2 = fitter(window, 5, "/tmp/ranknet_incr_lstm2.bin");
  ASSERT_TRUE(fitted2.ok());
  EXPECT_EQ(fitted.value().summary, fitted2.value().summary);
}

}  // namespace

// Forecaster-level tests of RankNetForecaster / TransformerForecaster using
// tiny untrained models (fast): shape contracts, determinism for a fixed
// seed, cache behavior, and status-source differences.
#include <gtest/gtest.h>

#include "core/ranknet.hpp"
#include "simulator/season.hpp"

namespace {

using namespace ranknet;

class ForecasterContract : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    vocab_ = new features::CarVocab({*race_});

    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 8;
    cfg.embed_dim = 2;
    cfg.vocab = vocab_->size();
    model_ = std::make_shared<core::LstmSeqModel>(cfg);
    model_->set_scaler(features::StandardScaler(17.0, 9.0));

    pit_ = std::make_shared<core::PitModel>();
    pit_->set_scaler(features::StandardScaler(15.0, 6.0));
  }
  static void TearDownTestSuite() {
    model_.reset();
    pit_.reset();
    delete vocab_;
    delete race_;
  }

  static telemetry::RaceLog* race_;
  static features::CarVocab* vocab_;
  static std::shared_ptr<core::LstmSeqModel> model_;
  static std::shared_ptr<core::PitModel> pit_;
};
telemetry::RaceLog* ForecasterContract::race_ = nullptr;
features::CarVocab* ForecasterContract::vocab_ = nullptr;
std::shared_ptr<core::LstmSeqModel> ForecasterContract::model_;
std::shared_ptr<core::PitModel> ForecasterContract::pit_;

TEST_F(ForecasterContract, OracleShapesAndDeterminism) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "test");
  util::Rng rng1(9), rng2(9);
  const auto a = f.forecast(*race_, 50, 3, 7, rng1);
  const auto b = f.forecast(*race_, 50, 3, 7, rng2);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [car_id, m] : a) {
    EXPECT_EQ(m.rows(), 7u);
    EXPECT_EQ(m.cols(), 3u);
    const auto& n = b.at(car_id);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_DOUBLE_EQ(m.flat()[i], n.flat()[i]);
    }
  }
}

TEST_F(ForecasterContract, PitModelSourceRunsAndDiffersFromOracle) {
  core::RankNetForecaster oracle(model_, nullptr, *vocab_,
                                 features::CovariateConfig{},
                                 core::StatusSource::kOracle, "oracle");
  core::RankNetForecaster mlp(model_, pit_, *vocab_,
                              features::CovariateConfig{},
                              core::StatusSource::kPitModel, "mlp");
  util::Rng rng1(5), rng2(5);
  const auto a = oracle.forecast(*race_, 60, 4, 5, rng1);
  const auto b = mlp.forecast(*race_, 60, 4, 5, rng2);
  ASSERT_EQ(a.size(), b.size());
  // Different covariate futures must (almost surely) change the samples.
  bool differs = false;
  for (const auto& [car_id, m] : a) {
    const auto& n = b.at(car_id);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m.flat()[i] != n.flat()[i]) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(ForecasterContract, ExcludesRetiredCars) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "test");
  util::Rng rng(3);
  const int origin = race_->num_laps() - 5;
  const auto samples = f.forecast(*race_, origin, 2, 3, rng);
  for (const auto& [car_id, _] : samples) {
    EXPECT_GE(race_->car(car_id).laps(), static_cast<std::size_t>(origin));
  }
  // At least one car retired before the final laps in a 200-lap race.
  EXPECT_LT(samples.size(), race_->car_ids().size());
}

TEST_F(ForecasterContract, RejectsBadArguments) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "test");
  util::Rng rng(1);
  EXPECT_THROW(f.forecast(*race_, 1, 2, 4, rng), std::invalid_argument);
  EXPECT_THROW(f.forecast(*race_, 50, 0, 4, rng), std::invalid_argument);
  EXPECT_THROW(f.forecast(*race_, 50, 2, 0, rng), std::invalid_argument);
}

TEST_F(ForecasterContract, PitModelSourceRequiresPitModel) {
  EXPECT_THROW(core::RankNetForecaster(model_, nullptr, *vocab_,
                                       features::CovariateConfig{},
                                       core::StatusSource::kPitModel, "bad"),
               std::invalid_argument);
}

TEST_F(ForecasterContract, TransformerForecasterContract) {
  core::TransformerConfig cfg;
  cfg.cov_dim = features::CovariateConfig{}.dim();
  cfg.model_dim = 16;
  cfg.heads = 4;
  cfg.blocks = 1;
  cfg.embed_dim = 2;
  cfg.vocab = vocab_->size();
  cfg.infer_context = 12;
  auto tf = std::make_shared<core::TransformerSeqModel>(cfg);
  tf->set_scaler(features::StandardScaler(17.0, 9.0));
  core::TransformerForecaster f(tf, nullptr, *vocab_,
                                features::CovariateConfig{},
                                core::StatusSource::kOracle, "tf");
  util::Rng rng(4);
  const auto samples = f.forecast(*race_, 40, 2, 3, rng);
  ASSERT_FALSE(samples.empty());
  for (const auto& [_, m] : samples) {
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    for (double v : m.flat()) {
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 45.0);
    }
  }
  // Joint source is documented as LSTM-only.
  EXPECT_THROW(core::TransformerForecaster(tf, nullptr, *vocab_,
                                           features::CovariateConfig{},
                                           core::StatusSource::kJoint, "x"),
               std::invalid_argument);
}

}  // namespace

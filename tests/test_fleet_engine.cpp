// FleetEngine byte-identity and resharding property harness.
//
// The fleet's contract (src/core/fleet_engine.hpp) extends the parallel
// engine's: forecasts are BIT-identical for any SHARD count — including
// across a live reshard mid-workload — and identical to calling the wrapped
// forecaster directly. As in test_parallel_engine.cpp these tests compare
// raw bytes, never values-within-tolerance, and they also pin the caller
// rng protocol (exactly one u64 consumed, so caller generator end states
// are shard-count- and reshard-invariant too).
//
// The concurrent cases (reshard under traffic, parallel season jobs) are
// the `fleet` label's TSan targets: build the tsan preset and run
// `ctest --preset fleet-tsan`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/baselines.hpp"
#include "core/fleet_engine.hpp"
#include "core/forecast_cache.hpp"
#include "core/ranknet.hpp"
#include "simulator/season.hpp"

namespace {

using namespace ranknet;

::testing::AssertionResult SamplesIdentical(const core::RaceSamples& a,
                                            const core::RaceSamples& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "car count " << a.size() << " vs " << b.size();
  }
  for (const auto& [car_id, m] : a) {
    const auto it = b.find(car_id);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "car " << car_id << " missing";
    }
    const auto& n = it->second;
    if (m.rows() != n.rows() || m.cols() != n.cols()) {
      return ::testing::AssertionFailure()
             << "car " << car_id << " shape mismatch";
    }
    if (std::memcmp(m.flat().data(), n.flat().data(),
                    m.flat().size() * sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "car " << car_id << " bytes differ";
    }
  }
  return ::testing::AssertionSuccess();
}

class FleetEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A small multi-race workload: distinct ids so routing actually spreads
    // across shards.
    races_ = new std::vector<telemetry::RaceLog>();
    races_->push_back(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    races_->push_back(
        sim::simulate_race({"Iowa", 2018, 300, sim::Usage::kTest}));
    races_->push_back(
        sim::simulate_race({"Texas", 2019, 248, sim::Usage::kTest}));
    races_->push_back(
        sim::simulate_race({"Pocono", 2019, 200, sim::Usage::kTest}));

    vocab_ = new features::CarVocab({(*races_)[0]});
    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 8;
    cfg.embed_dim = 2;
    cfg.vocab = vocab_->size();
    model_ = std::make_shared<core::LstmSeqModel>(cfg);
    model_->set_scaler(features::StandardScaler(17.0, 9.0));
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete vocab_;
    delete races_;
  }

  static std::vector<core::FleetEngine::SeasonJob> season_jobs(
      int num_samples = 6) {
    std::vector<core::FleetEngine::SeasonJob> jobs;
    for (const auto& race : *races_) {
      auto shared = std::make_shared<const telemetry::RaceLog>(race);
      for (int origin : {50, 90}) {
        jobs.push_back({shared, origin, 5, num_samples});
      }
    }
    return jobs;
  }

  /// Forecast the whole workload through fleets at shard counts {1, 2, 8}
  /// and require (a) bytes identical to the direct (unfleeted) forecaster
  /// call and (b) identical caller rng end states.
  static void ExpectShardCountInvariant(
      const core::ForecasterFactory& factory) {
    auto direct = factory();
    struct Ref {
      core::RaceSamples samples;
      std::uint64_t rng_next;
    };
    std::vector<Ref> reference;
    for (std::size_t r = 0; r < races_->size(); ++r) {
      util::Rng rng(1000 + r);
      Ref ref;
      ref.samples = direct->forecast((*races_)[r], 50, 5, 6, rng);
      ref.rng_next = rng();
      ASSERT_FALSE(ref.samples.empty());
      reference.push_back(std::move(ref));
    }

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{8}}) {
      core::FleetConfig cfg;
      cfg.shards = shards;
      core::FleetEngine fleet(factory, cfg);
      ASSERT_EQ(fleet.num_shards(), shards);
      for (std::size_t r = 0; r < races_->size(); ++r) {
        util::Rng rng(1000 + r);
        const auto out = fleet.forecast((*races_)[r], 50, 5, 6, rng);
        EXPECT_TRUE(SamplesIdentical(reference[r].samples, out))
            << direct->name() << " race " << r << " at " << shards
            << " shards";
        EXPECT_EQ(rng(), reference[r].rng_next)
            << direct->name() << " rng state diverged, race " << r << " at "
            << shards << " shards";
      }
    }
  }

  static std::vector<telemetry::RaceLog>* races_;
  static features::CarVocab* vocab_;
  static std::shared_ptr<core::LstmSeqModel> model_;
};
std::vector<telemetry::RaceLog>* FleetEngineTest::races_ = nullptr;
features::CarVocab* FleetEngineTest::vocab_ = nullptr;
std::shared_ptr<core::LstmSeqModel> FleetEngineTest::model_;

TEST_F(FleetEngineTest, RaceKeyIsStableAndRoutingConsistent) {
  const auto key = core::FleetEngine::race_key("Indy500-2019");
  EXPECT_EQ(key, core::FleetEngine::race_key("Indy500-2019"));
  EXPECT_NE(key, core::FleetEngine::race_key("Indy500-2018"));

  core::FleetConfig cfg;
  cfg.shards = 8;
  core::FleetEngine fleet([] { return std::make_shared<core::CurRankForecaster>(); },
                          cfg);
  const auto idx = fleet.shard_index("Indy500-2019");
  EXPECT_LT(idx, fleet.num_shards());
  EXPECT_EQ(idx, fleet.shard_index("Indy500-2019"));
  EXPECT_EQ(fleet.shard_for("Indy500-2019").get(), fleet.shard(idx).get());
}

TEST_F(FleetEngineTest, JobBaseIsPureAndKeySensitive) {
  const auto k = core::FleetEngine::race_key("Iowa-2018");
  const auto b = core::FleetEngine::job_base(7, k, 50, 5, 6);
  EXPECT_EQ(b, core::FleetEngine::job_base(7, k, 50, 5, 6));
  EXPECT_NE(b, core::FleetEngine::job_base(8, k, 50, 5, 6));
  EXPECT_NE(b, core::FleetEngine::job_base(7, k + 1, 50, 5, 6));
  EXPECT_NE(b, core::FleetEngine::job_base(7, k, 51, 5, 6));
  EXPECT_NE(b, core::FleetEngine::job_base(7, k, 50, 6, 6));
  EXPECT_NE(b, core::FleetEngine::job_base(7, k, 50, 5, 7));
}

TEST_F(FleetEngineTest, CurRankShardCountByteInvariant) {
  ExpectShardCountInvariant(
      [] { return std::make_shared<core::CurRankForecaster>(); });
}

TEST_F(FleetEngineTest, ArimaShardCountByteInvariant) {
  ExpectShardCountInvariant(
      [] { return std::make_shared<core::ArimaForecaster>(); });
}

TEST_F(FleetEngineTest, RankNetOracleShardCountByteInvariant) {
  // Every factory call builds a fresh forecaster instance over the SAME
  // shared weights — the per-shard-instance contract the serving registry
  // relies on.
  ExpectShardCountInvariant([] {
    return std::make_shared<core::RankNetForecaster>(
        model_, nullptr, *vocab_, features::CovariateConfig{},
        core::StatusSource::kOracle, "oracle");
  });
}

TEST_F(FleetEngineTest, ForecastKeyedMatchesRngSurface) {
  core::FleetConfig cfg;
  cfg.shards = 2;
  core::FleetEngine fleet(
      [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);
  // forecast(rng) consumes exactly the one u64 that forecast_keyed takes
  // explicitly, so seeding both ways must agree bit-for-bit.
  util::Rng rng(0xabcd);
  const std::uint64_t base = util::Rng(0xabcd)();
  const auto via_rng = fleet.forecast((*races_)[1], 60, 4, 5, rng);
  const auto via_base = fleet.forecast_keyed((*races_)[1], 60, 4, 5, base);
  EXPECT_TRUE(SamplesIdentical(via_rng, via_base));
}

TEST_F(FleetEngineTest, RunSeasonShardCountByteInvariant) {
  const auto jobs = season_jobs();
  std::vector<std::vector<core::RaceSamples>> runs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    core::FleetConfig cfg;
    cfg.shards = shards;
    core::FleetEngine fleet(
        [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);
    runs.push_back(fleet.run_season(jobs, /*season_seed=*/42));
    ASSERT_EQ(runs.back().size(), jobs.size());
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_TRUE(SamplesIdentical(runs[0][i], runs[r][i]))
          << "job " << i << ", run " << r;
    }
  }
  // And a different season seed must actually change the bytes (the seed is
  // live, not ignored).
  core::FleetEngine fleet(
      [] { return std::make_shared<core::ArimaForecaster>(); },
      core::FleetConfig{});
  const auto other = fleet.run_season(jobs, /*season_seed=*/43);
  EXPECT_FALSE(SamplesIdentical(runs[0][0], other[0]));
}

TEST_F(FleetEngineTest, LiveReshardIsByteInvariant) {
  const auto jobs = season_jobs();
  core::FleetConfig cfg;
  cfg.shards = 1;
  core::FleetEngine fleet(
      [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);
  const auto before = fleet.run_season(jobs, 42);
  for (const std::size_t n : {std::size_t{2}, std::size_t{8},
                              std::size_t{3}}) {
    fleet.reshard(n);
    ASSERT_EQ(fleet.num_shards(), n);
    const auto after = fleet.run_season(jobs, 42);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_TRUE(SamplesIdentical(before[i], after[i]))
          << "job " << i << " after reshard to " << n;
    }
    // Caller rng surface too: the single-forecast path consumes one u64
    // regardless of the live shard count.
    util::Rng rng(99);
    (void)fleet.forecast((*races_)[0], 50, 5, 6, rng);
    util::Rng expect(99);
    (void)expect();
    EXPECT_EQ(rng(), expect());
  }
}

TEST_F(FleetEngineTest, ReshardUnderTrafficKeepsBytesAndAnswersEveryone) {
  // The fleet-tsan centerpiece: four client threads hammer forecast_keyed
  // while the main thread reshards through {2, 8, 1, 4}. Every in-flight
  // job must complete on the shard generation it grabbed and every byte
  // must match the single-shard reference.
  core::FleetConfig cfg;
  cfg.shards = 2;
  core::FleetEngine fleet(
      [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);

  constexpr int kPerThread = 12;
  std::vector<core::RaceSamples> reference;
  for (std::size_t r = 0; r < races_->size(); ++r) {
    const auto base = core::FleetEngine::job_base(
        7, core::FleetEngine::race_key((*races_)[r].id()), 50, 5, 6);
    reference.push_back(fleet.forecast_keyed((*races_)[r], 50, 5, 6, base));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t r = (t + static_cast<std::size_t>(i)) %
                              races_->size();
        const auto base = core::FleetEngine::job_base(
            7, core::FleetEngine::race_key((*races_)[r].id()), 50, 5, 6);
        const auto out =
            fleet.forecast_keyed((*races_)[r], 50, 5, 6, base);
        if (!SamplesIdentical(reference[r], out)) mismatches.fetch_add(1);
        answered.fetch_add(1);
      }
    });
  }
  for (const std::size_t n : {std::size_t{8}, std::size_t{1}, std::size_t{4},
                              std::size_t{2}}) {
    fleet.reshard(n);
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(answered.load(), 4 * kPerThread);
}

TEST_F(FleetEngineTest, DegradationPolicyForwardsToEveryShard) {
  core::FleetConfig cfg;
  cfg.shards = 3;
  core::FleetEngine fleet(
      [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);
  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<core::CurRankForecaster>();
  // Damage tier: every car is "damaged", so the fallback serves everything
  // on whichever shard the forecast lands on.
  policy.series_damaged = [](int, int) { return true; };
  ASSERT_TRUE(fleet.set_degradation_policy(std::move(policy)).ok());

  util::Rng rng(5);
  (void)fleet.forecast((*races_)[2], 50, 5, 6, rng);
  const auto deg = fleet.degradation();
  EXPECT_GT(deg.damaged_fallback_cars, 0u);
  EXPECT_EQ(deg.full_cars, 0u);

  // The policy must survive a reshard (re-applied to the fresh shard set).
  fleet.reshard(2);
  util::Rng rng2(5);
  (void)fleet.forecast((*races_)[2], 50, 5, 6, rng2);
  EXPECT_GT(fleet.degradation().damaged_fallback_cars, 0u);
}

TEST_F(FleetEngineTest, StatsAggregateAcrossShards) {
  core::FleetConfig cfg;
  cfg.shards = 4;
  core::FleetEngine fleet(
      [] { return std::make_shared<core::CurRankForecaster>(); }, cfg);
  const auto jobs = season_jobs();
  (void)fleet.run_season(jobs, 42);
  EXPECT_EQ(fleet.stats().forecasts, jobs.size());
}

TEST_F(FleetEngineTest, PerShardCacheHitReplaysExactBytes) {
  core::FleetConfig cfg;
  cfg.shards = 2;
  cfg.shard.cache_capacity = 8;
  core::FleetEngine fleet(
      [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);
  const auto base = core::FleetEngine::job_base(
      7, core::FleetEngine::race_key((*races_)[0].id()), 50, 5, 6);
  const auto cold = fleet.forecast_keyed((*races_)[0], 50, 5, 6, base);
  const auto hits_before = core::CacheCounters::instance().hits();
  const auto hit = fleet.forecast_keyed((*races_)[0], 50, 5, 6, base);
  EXPECT_GT(core::CacheCounters::instance().hits(), hits_before);
  EXPECT_TRUE(SamplesIdentical(cold, hit));
}

TEST_F(FleetEngineTest, SharedCacheIsWiredIntoEveryShard) {
  auto shared = std::make_shared<core::ForecastCache>(32, /*stripes=*/4);
  core::FleetConfig cfg;
  cfg.shards = 3;
  cfg.shard.cache_capacity = 8;  // must be overridden by the shared cache
  cfg.shared_cache = shared;
  core::FleetEngine fleet(
      [] { return std::make_shared<core::ArimaForecaster>(); }, cfg);
  for (std::size_t i = 0; i < fleet.num_shards(); ++i) {
    EXPECT_EQ(fleet.shard(i)->cache().get(), shared.get()) << "shard " << i;
    EXPECT_EQ(fleet.shard(i)->engine()->forecast_cache().get(), shared.get());
  }
}

TEST_F(FleetEngineTest, RunSeasonRejectsNullRace) {
  core::FleetEngine fleet(
      [] { return std::make_shared<core::CurRankForecaster>(); },
      core::FleetConfig{});
  std::vector<core::FleetEngine::SeasonJob> jobs(1);  // null race
  EXPECT_THROW((void)fleet.run_season(jobs, 1), std::invalid_argument);
}

}  // namespace

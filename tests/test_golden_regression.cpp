// Golden-trajectory regression test.
//
// A fixed-seed simulated race is forecast by RankNet (oracle status) and
// two baselines (CurRank, ARIMA); the per-car median trajectories are
// compared against CSVs committed under tests/golden/. Any change to the
// simulator, feature pipeline, model initialization, rng stream layout, or
// sampling path shows up here as a concrete numeric diff — which is the
// point: refactors like the parallel engine must NOT move these numbers.
//
// Regenerate (after an intentional behavior change) with:
//   RANKNET_UPDATE_GOLDEN=1 ./tests/test_golden_regression
// and commit the rewritten CSVs alongside the change that explains them.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/ranknet.hpp"
#include "simulator/season.hpp"
#include "tensor/simd_kernels.hpp"

namespace {

using namespace ranknet;

#ifndef RANKNET_GOLDEN_DIR
#error "RANKNET_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

constexpr std::uint64_t kSeed = 2468;
constexpr int kHorizon = 5;
constexpr int kNumSamples = 32;
const std::vector<int> kOrigins{40, 90, 140};

// rows keyed (origin, car_id) -> median predicted rank per horizon lap.
using Trajectories = std::map<std::pair<int, int>, std::vector<double>>;

Trajectories median_trajectories(core::RaceForecaster& forecaster,
                                 const telemetry::RaceLog& race) {
  Trajectories out;
  util::Rng rng(kSeed);
  for (const int origin : kOrigins) {
    const auto ranks = core::sort_to_ranks(
        forecaster.forecast(race, origin, kHorizon, kNumSamples, rng));
    for (const auto& [car_id, m] : ranks) {
      std::vector<double> med(m.cols());
      for (std::size_t h = 0; h < m.cols(); ++h) {
        med[h] = core::sample_quantile(m, h, 0.5);
      }
      out.emplace(std::make_pair(origin, car_id), std::move(med));
    }
  }
  return out;
}

std::string golden_path(const std::string& model) {
  return std::string(RANKNET_GOLDEN_DIR) + "/" + model + "_median.csv";
}

void write_golden(const std::string& model, const Trajectories& t) {
  std::ofstream out(golden_path(model));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(model);
  out << "origin,car_id";
  for (int h = 1; h <= kHorizon; ++h) out << ",h" << h;
  out << "\n";
  char buf[64];
  for (const auto& [key, med] : t) {
    out << key.first << "," << key.second;
    for (const double v : med) {
      // %.17g round-trips doubles exactly; the comparison tolerance below
      // exists only to absorb decimal parsing, not computation drift.
      std::snprintf(buf, sizeof(buf), ",%.17g", v);
      out << buf;
    }
    out << "\n";
  }
}

Trajectories read_golden(const std::string& model) {
  Trajectories t;
  std::ifstream in(golden_path(model));
  if (!in.good()) return t;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    std::getline(row, cell, ',');
    const int origin = std::stoi(cell);
    std::getline(row, cell, ',');
    const int car_id = std::stoi(cell);
    std::vector<double> med;
    while (std::getline(row, cell, ',')) med.push_back(std::stod(cell));
    t.emplace(std::make_pair(origin, car_id), std::move(med));
  }
  return t;
}

void check_against_golden(const std::string& model,
                          core::RaceForecaster& forecaster,
                          const telemetry::RaceLog& race) {
  const auto actual = median_trajectories(forecaster, race);
  ASSERT_FALSE(actual.empty());

  if (std::getenv("RANKNET_UPDATE_GOLDEN") != nullptr) {
    write_golden(model, actual);
    GTEST_SKIP() << "rewrote " << golden_path(model);
  }

  const auto expected = read_golden(model);
  ASSERT_FALSE(expected.empty())
      << golden_path(model)
      << " missing — generate with RANKNET_UPDATE_GOLDEN=1";
  ASSERT_EQ(actual.size(), expected.size()) << model << " row set changed";
  for (const auto& [key, med] : actual) {
    const auto it = expected.find(key);
    ASSERT_NE(it, expected.end())
        << model << " new row origin=" << key.first << " car=" << key.second;
    ASSERT_EQ(med.size(), it->second.size());
    for (std::size_t h = 0; h < med.size(); ++h) {
      EXPECT_NEAR(med[h], it->second[h], 1e-9)
          << model << " origin=" << key.first << " car=" << key.second
          << " h=" << h + 1;
    }
  }
}

class GoldenRegression : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    vocab_ = new features::CarVocab({*race_});
  }
  static void TearDownTestSuite() {
    delete vocab_;
    delete race_;
  }
  // Goldens are pinned to the scalar reference variant (see DESIGN.md,
  // "Golden-file policy"): the scalar kernels are byte-frozen, so these
  // CSVs stay valid no matter which SIMD variant the host CPU or a
  // RANKNET_KERNEL override would otherwise select. Regenerate with the
  // same pin in place.
  void SetUp() override {
    saved_ = tensor::kernels::active_variant();
    ASSERT_TRUE(
        tensor::kernels::set_variant(tensor::kernels::Variant::kScalar).ok());
  }
  void TearDown() override {
    ASSERT_TRUE(tensor::kernels::set_variant(saved_).ok());
  }
  tensor::kernels::Variant saved_ = tensor::kernels::Variant::kScalar;
  static telemetry::RaceLog* race_;
  static features::CarVocab* vocab_;
};
telemetry::RaceLog* GoldenRegression::race_ = nullptr;
features::CarVocab* GoldenRegression::vocab_ = nullptr;

TEST_F(GoldenRegression, RankNetMedianTrajectories) {
  core::SeqModelConfig cfg;
  cfg.cov_dim = features::CovariateConfig{}.dim();
  cfg.hidden = 8;
  cfg.embed_dim = 2;
  cfg.vocab = vocab_->size();
  auto model = std::make_shared<core::LstmSeqModel>(cfg);
  model->set_scaler(features::StandardScaler(17.0, 9.0));
  core::RankNetForecaster f(model, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "RankNet");
  check_against_golden("ranknet", f, *race_);
}

TEST_F(GoldenRegression, CurRankMedianTrajectories) {
  core::CurRankForecaster f;
  check_against_golden("currank", f, *race_);
}

TEST_F(GoldenRegression, ArimaMedianTrajectories) {
  core::ArimaForecaster f;
  check_against_golden("arima", f, *race_);
}

}  // namespace

// Serving soak: sustained load through the four fault profiles the serving
// front end must survive — clean, lossy transport (drop + truncate +
// corrupt), stalled clients alongside healthy traffic, and model-swap churn
// — asserting the server's core robustness claims end to end:
//   1. zero crashed/hung requests: every request is answered or explicitly
//      rejected (lossy-transport requests are re-driven until answered);
//   2. serve.* counters are monotone across phases and the tier counters
//      account for every response the server produced;
//   3. clean cache-hit replays are byte-identical across phases while the
//      model version is stable, and under swap churn at least one promotion
//      AND one automatic probation rollback land while traffic is flowing.
//
// The harness pipelines raw frames (chunks of 50) rather than using the
// synchronous client so 10k+ requests per profile stay inside a tier-1 time
// budget on a single-core box. Transport faults are injected client-side
// through sim::WireFaultInjector; because apply() returns the exact bytes
// it mutated, the harness knows precisely which requests can still be
// answered on the current connection — no guess-and-timeout tails:
//   dropped            -> never sent, re-queue
//   payload corrupted  -> checksum skip server-side, framing survives
//   truncated / header -> the connection's framing is gone; the chunk's
//     corrupted            remainder is void and re-queues on a fresh conn
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/forecast_cache.hpp"
#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "serve/client.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "simulator/fault_injector.hpp"
#include "simulator/season.hpp"
#include "util/socket.hpp"

namespace {

using namespace ranknet;
namespace wire = serve::wire;

constexpr int kRequestsPerProfile = 10000;
constexpr std::size_t kChunk = 50;
constexpr int kSeedSpace = 64;  // distinct seeds => bounded cache footprint

// Tier counters: their per-phase delta must equal the number of responses
// the server emitted (this binary is the only traffic source).
const char* const kTierCounters[] = {
    "serve.tier.full",     "serve.tier.cached",   "serve.tier.partial",
    "serve.tier.fallback", "serve.tier.rejected",
};
// Everything the soak watches for monotonicity across phases.
const char* const kMonotoneCounters[] = {
    "serve.tier.full",
    "serve.tier.cached",
    "serve.tier.partial",
    "serve.tier.fallback",
    "serve.tier.rejected",
    "serve.admission.shed_queue_full",
    "serve.admission.degraded",
    "serve.deadline.expired_in_queue",
    "serve.frames.corrupt_skipped",
    "serve.frames.bad_header",
    "serve.conn.slow_dropped",
    "serve.registry.promoted",
    "serve.registry.rolled_back",
};

std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

std::vector<std::uint64_t> snapshot(const char* const* names, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = counter_value(names[i]);
  return out;
}

serve::ModelFactory affine_factory() {
  return [](const std::string& path)
             -> util::Result<std::shared_ptr<core::RaceForecaster>> {
    auto model = std::make_shared<serve::AffineRankModel>();
    if (auto st = model->load_artifact(path); !st.ok()) return st;
    return std::shared_ptr<core::RaceForecaster>(std::move(model));
  };
}

util::Result<wire::ForecastResponse> read_response(util::UnixStream& stream,
                                                   double timeout) {
  std::uint8_t header_bytes[wire::kHeaderSize];
  if (auto st = stream.recv_all(header_bytes, sizeof(header_bytes), timeout);
      !st.ok()) {
    return st;
  }
  auto header = wire::decode_header(header_bytes);
  if (!header.ok()) return header.status();
  std::vector<std::uint8_t> payload(header.value().payload_len);
  if (auto st = stream.recv_all(payload.data(), payload.size(), timeout);
      !st.ok()) {
    return st;
  }
  if (auto st = wire::verify_payload(header.value(), payload); !st.ok()) {
    return st;
  }
  return wire::decode_forecast_response(payload);
}

std::vector<std::uint8_t> flatten(const wire::ForecastResponse& response) {
  std::vector<std::uint8_t> bytes;
  for (const auto& car : response.cars) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(car.median.data());
    bytes.insert(bytes.end(), p, p + car.median.size() * sizeof(double));
  }
  return bytes;
}

class ServeSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    race_ = std::make_unique<telemetry::RaceLog>(
        sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest}));
    serve::AffineRankModel::save_artifact(kIdentityArtifact, 1.0, 0.0);
    serve::AffineRankModel::save_artifact(kScaledArtifact, 2.0, 3.0);
    serve::AffineRankModel::save_artifact(
        kNanArtifact, std::numeric_limits<double>::quiet_NaN(), 0.0);

    serve::RegistryConfig reg_cfg;
    reg_cfg.gate.probe_origin_lap = 30;
    reg_cfg.gate.probe_horizon = 5;
    reg_cfg.gate.probe_num_samples = 4;
    // Gate off: the swap-churn phase needs a rotten model to reach serving
    // so the probation rollback fires under live traffic.
    reg_cfg.gate.max_prediction_failure_rate = 1.0;
    registry_ =
        std::make_unique<serve::ModelRegistry>(affine_factory(), reg_cfg);
    registry_->set_probe_race(*race_);
    registry_->set_forecast_cache(std::make_shared<core::ForecastCache>(256));
    ASSERT_TRUE(registry_->init(kIdentityArtifact).ok());

    serve::ServerConfig cfg;
    cfg.socket_path = "/tmp/ranknet_serve_soak.sock";
    cfg.slow_client_timeout_seconds = 0.1;
    server_ = std::make_unique<serve::ForecastServer>(*registry_, cfg);
    server_->add_race(*race_);
    ASSERT_TRUE(server_->start().ok());
    socket_path_ = cfg.socket_path;
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  wire::ForecastRequest make_request(std::uint64_t id, std::uint64_t seed) {
    wire::ForecastRequest req;
    req.request_id = id;
    req.seed = seed;
    req.race_id = race_->id();
    req.origin_lap = 30;
    req.horizon = 5;
    req.num_samples = 4;
    return req;
  }

  std::vector<wire::ForecastRequest> make_batch(int count,
                                                std::uint64_t seed_base) {
    std::vector<wire::ForecastRequest> reqs;
    reqs.reserve(count);
    for (int i = 0; i < count; ++i) {
      reqs.push_back(make_request(next_id_++, seed_base + (i % kSeedSpace)));
    }
    return reqs;
  }

  /// Record/verify the byte-identical-replay invariant for a successful
  /// version-1 response. First sighting of a seed stores the bytes; every
  /// later sighting must match exactly.
  void check_replay(std::uint64_t seed, const wire::ForecastResponse& r) {
    if (!r.ok() || r.model_version != 1) return;
    auto bytes = flatten(r);
    auto it = replay_.find(seed);
    if (it == replay_.end()) {
      replay_.emplace(seed, std::move(bytes));
    } else {
      EXPECT_EQ(bytes, it->second)
          << "cache-hit replay for seed " << seed << " not byte-identical";
    }
  }

  /// Pipeline `reqs` over clean transport; every request must come back
  /// (any order — the worker's group map may reorder within a batch).
  /// Returns the number answered.
  int drive_clean(const std::vector<wire::ForecastRequest>& reqs,
                  bool verify_replay) {
    std::map<std::uint64_t, std::uint64_t> id_to_seed;
    for (const auto& r : reqs) id_to_seed[r.request_id] = r.seed;
    auto stream = util::UnixStream::connect(socket_path_, 1.0);
    EXPECT_TRUE(stream.ok());
    if (!stream.ok()) return 0;
    int answered = 0;
    for (std::size_t base = 0; base < reqs.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, reqs.size() - base);
      std::vector<std::uint8_t> out;
      for (std::size_t i = 0; i < n; ++i) {
        const auto frame = wire::encode_frame(
            wire::FrameType::kForecastRequest,
            wire::encode_forecast_request(reqs[base + i]));
        out.insert(out.end(), frame.begin(), frame.end());
      }
      EXPECT_TRUE(stream.value().send_all(out.data(), out.size(), 5.0).ok());
      for (std::size_t i = 0; i < n; ++i) {
        auto response = read_response(stream.value(), 10.0);
        EXPECT_TRUE(response.ok())
            << "request starved at offset " << (base + i) << ": "
            << response.status().to_string();
        if (!response.ok()) return answered;
        ++answered;
        const auto& r = response.value();
        auto seed_it = id_to_seed.find(r.request_id);
        EXPECT_NE(seed_it, id_to_seed.end()) << "unsolicited response";
        if (verify_replay && seed_it != id_to_seed.end()) {
          check_replay(seed_it->second, r);
        }
      }
    }
    return answered;
  }

  static constexpr const char* kIdentityArtifact =
      "/tmp/ranknet_soak_identity.bin";
  static constexpr const char* kScaledArtifact =
      "/tmp/ranknet_soak_scaled.bin";
  static constexpr const char* kNanArtifact = "/tmp/ranknet_soak_nan.bin";

  std::unique_ptr<telemetry::RaceLog> race_;
  std::unique_ptr<serve::ModelRegistry> registry_;
  std::unique_ptr<serve::ForecastServer> server_;
  std::string socket_path_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::vector<std::uint8_t>> replay_;  // seed->bytes
};

TEST_F(ServeSoakTest, SustainedLoadThroughFaultProfiles) {
  auto monotone_prev =
      snapshot(kMonotoneCounters, std::size(kMonotoneCounters));
  auto check_monotone = [&](const char* phase) {
    auto now = snapshot(kMonotoneCounters, std::size(kMonotoneCounters));
    for (std::size_t i = 0; i < now.size(); ++i) {
      EXPECT_GE(now[i], monotone_prev[i])
          << kMonotoneCounters[i] << " decreased during phase " << phase;
    }
    monotone_prev = std::move(now);
  };
  auto tier_total = [] {
    std::uint64_t sum = 0;
    for (const char* name : kTierCounters) sum += counter_value(name);
    return sum;
  };

  // ---- Phase 1: clean transport ---------------------------------------
  {
    const auto tiers_before = tier_total();
    const int answered =
        drive_clean(make_batch(kRequestsPerProfile, 1000), true);
    ASSERT_EQ(answered, kRequestsPerProfile);
    EXPECT_EQ(tier_total() - tiers_before,
              static_cast<std::uint64_t>(kRequestsPerProfile));
    EXPECT_GE(replay_.size(), static_cast<std::size_t>(kSeedSpace));
    EXPECT_GT(counter_value("serve.tier.cached"), 0u)
        << "seed cycling never hit the forecast cache";
  }
  check_monotone("clean");

  // ---- Phase 2: lossy transport (drop + truncate + corrupt) -----------
  {
    sim::WireFaultProfile profile;
    profile.drop_rate = 0.01;
    profile.truncate_rate = 0.003;
    profile.corrupt_rate = 0.01;
    sim::WireFaultInjector injector(profile, 0xfa01);
    auto pending = make_batch(kRequestsPerProfile, 1000);  // same seed space
    std::map<std::uint64_t, std::uint64_t> id_to_seed;
    for (const auto& r : pending) id_to_seed[r.request_id] = r.seed;

    int rounds = 0;
    int answered = 0;
    while (!pending.empty()) {
      ASSERT_LT(++rounds, 400)
          << pending.size()
          << " requests still unanswered — the lossy phase stopped "
             "converging";
      std::vector<wire::ForecastRequest> next_round;
      for (std::size_t base = 0; base < pending.size(); base += kChunk) {
        const std::size_t n = std::min(kChunk, pending.size() - base);
        // Fresh connection per chunk: a poisoned frame only voids the rest
        // of its own chunk, and the server's slow-client guard reaps the
        // carcass on its own schedule.
        auto stream = util::UnixStream::connect(socket_path_, 1.0);
        ASSERT_TRUE(stream.ok());
        std::vector<std::uint8_t> out;
        std::set<std::uint64_t> expecting;
        bool poisoned = false;
        std::size_t i = 0;
        for (; i < n && !poisoned; ++i) {
          const auto& req = pending[base + i];
          const auto frame = wire::encode_frame(
              wire::FrameType::kForecastRequest,
              wire::encode_forecast_request(req));
          auto mutated = injector.apply(frame);
          if (!mutated.has_value()) {  // dropped on the floor
            next_round.push_back(req);
            continue;
          }
          out.insert(out.end(), mutated->begin(), mutated->end());
          const bool truncated = mutated->size() < frame.size();
          const bool header_hit =
              !truncated && std::memcmp(mutated->data(), frame.data(),
                                        wire::kHeaderSize) != 0;
          if (truncated || header_hit) {
            // Framing on this connection is no longer trustworthy.
            next_round.push_back(req);
            poisoned = true;
          } else if (!std::equal(mutated->begin(), mutated->end(),
                                 frame.begin())) {
            next_round.push_back(req);  // checksum skip, no answer coming
          } else {
            expecting.insert(req.request_id);
          }
        }
        for (; i < n; ++i) next_round.push_back(pending[base + i]);

        if (!out.empty() &&
            !stream.value().send_all(out.data(), out.size(), 5.0).ok()) {
          // Connection already gone; everything we expected re-queues.
          for (std::uint64_t id : expecting) {
            next_round.push_back(make_request(id, id_to_seed.at(id)));
          }
          continue;
        }
        while (!expecting.empty()) {
          auto response = read_response(stream.value(), 10.0);
          if (!response.ok()) {
            for (std::uint64_t id : expecting) {
              next_round.push_back(make_request(id, id_to_seed.at(id)));
            }
            break;
          }
          const auto& r = response.value();
          ASSERT_EQ(expecting.erase(r.request_id), 1u)
              << "response for a request this chunk never sent: "
              << r.request_id;
          ++answered;
          check_replay(id_to_seed.at(r.request_id), r);
        }
      }
      pending = std::move(next_round);
    }
    EXPECT_EQ(answered, kRequestsPerProfile);
    const auto& c = injector.counters();
    EXPECT_GT(c.dropped, 0u);
    EXPECT_GT(c.truncated, 0u);
    EXPECT_GT(c.corrupted, 0u);
  }
  check_monotone("lossy");

  // ---- Phase 3: stalled clients alongside healthy traffic -------------
  {
    const auto slow_before = counter_value("serve.conn.slow_dropped");
    // Three connections park half a frame each and go quiet.
    std::vector<util::UnixStream> stalled;
    for (int i = 0; i < 3; ++i) {
      auto conn = util::UnixStream::connect(socket_path_, 1.0);
      ASSERT_TRUE(conn.ok());
      const auto frame = wire::encode_frame(
          wire::FrameType::kForecastRequest,
          wire::encode_forecast_request(make_request(next_id_++, 1)));
      ASSERT_TRUE(
          conn.value().send_all(frame.data(), frame.size() / 2, 1.0).ok());
      stalled.push_back(std::move(conn).value());
    }
    const int answered =
        drive_clean(make_batch(kRequestsPerProfile, 1000), true);
    ASSERT_EQ(answered, kRequestsPerProfile);
    // 10k pipelined requests take far longer than the 0.1s stall budget, so
    // the guard must have culled all three bystanders by now.
    EXPECT_GE(counter_value("serve.conn.slow_dropped"), slow_before + 3);
  }
  check_monotone("stalled");

  // ---- Phase 4: model-swap churn under load ---------------------------
  {
    const auto promoted_before = counter_value("serve.registry.promoted");
    const auto rolled_before = counter_value("serve.registry.rolled_back");
    const auto tiers_before = tier_total();
    serve::ClientConfig swap_cfg;
    swap_cfg.socket_path = socket_path_;
    serve::ForecastClient swapper(swap_cfg);

    // Fresh seeds: swap-churn traffic must reach the full tier (cache
    // misses) so the rotten model actually serves and probation trips.
    const auto reqs = make_batch(kRequestsPerProfile, 50000);
    auto stream = util::UnixStream::connect(socket_path_, 1.0);
    ASSERT_TRUE(stream.ok());
    int answered = 0;
    int chunk_index = 0;
    for (std::size_t base = 0; base < reqs.size(); base += kChunk) {
      // Churn: a healthy candidate, then a rotten one that probation rolls
      // back as soon as it serves full-tier traffic.
      if (chunk_index % 40 == 10) {
        ASSERT_TRUE(swapper.swap_model(kScaledArtifact).ok());
      } else if (chunk_index % 40 == 30) {
        ASSERT_TRUE(swapper.swap_model(kNanArtifact).ok());
      }
      ++chunk_index;
      const std::size_t n = std::min(kChunk, reqs.size() - base);
      std::vector<std::uint8_t> out;
      for (std::size_t i = 0; i < n; ++i) {
        const auto frame = wire::encode_frame(
            wire::FrameType::kForecastRequest,
            wire::encode_forecast_request(reqs[base + i]));
        out.insert(out.end(), frame.begin(), frame.end());
      }
      ASSERT_TRUE(stream.value().send_all(out.data(), out.size(), 5.0).ok());
      for (std::size_t i = 0; i < n; ++i) {
        auto response = read_response(stream.value(), 10.0);
        ASSERT_TRUE(response.ok()) << "request starved during swap churn: "
                                   << response.status().to_string();
        ++answered;
      }
    }
    EXPECT_EQ(answered, kRequestsPerProfile);
    EXPECT_EQ(tier_total() - tiers_before,
              static_cast<std::uint64_t>(kRequestsPerProfile));
    EXPECT_GT(counter_value("serve.registry.promoted"), promoted_before)
        << "no hot-swap promotion landed under load";
    EXPECT_GT(counter_value("serve.registry.rolled_back"), rolled_before)
        << "no automatic rollback fired under load";
  }
  check_monotone("swap-churn");

  // ---- Epilogue: the survivor still serves clean, finite forecasts ----
  serve::ClientConfig cfg;
  cfg.socket_path = socket_path_;
  serve::ForecastClient client(cfg);
  auto final_response = client.forecast(make_request(next_id_++, 424242));
  ASSERT_TRUE(final_response.ok());
  ASSERT_TRUE(final_response.value().ok()) << final_response.value().message;
  ASSERT_FALSE(final_response.value().cars.empty());
  for (const auto& car : final_response.value().cars) {
    for (double v : car.median) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace

// End-to-end soak of the online learning loop (DESIGN.md "Online learning
// & promotion gates"): simulated races stream through the fault injector
// and the StreamIngestor into the replay buffer; the OnlineTrainer fits
// affine candidates, shadow-scores them against the registry's active
// engine, and promotes / rejects / rolls back through the ModelRegistry.
//
// The scenario is scripted to force every lifecycle edge at least once —
// a strictly better candidate promotes, a gate-tightened step rejects, a
// sabotaged candidate slips a permissive gate and probation rolls it back,
// byte-restoring the pre-sabotage serving output. The whole run is
// deterministic under the scripted clock and seeded simulator, so the
// promote/rollback trace must be byte-identical across engine thread
// counts {1, 2, 8} and across repeated runs — and every swap must be
// exactly accounted in the serve.online.* counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/online_loop.hpp"
#include "simulator/fault_injector.hpp"
#include "simulator/season.hpp"

namespace {

using namespace ranknet;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizerBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizerBuild = true;
#else
constexpr bool kSanitizerBuild = false;
#endif
#else
constexpr bool kSanitizerBuild = false;
#endif

serve::ModelFactory affine_factory() {
  return [](const std::string& path)
             -> util::Result<std::shared_ptr<core::RaceForecaster>> {
    auto model = std::make_shared<serve::AffineRankModel>();
    if (auto st = model->load_artifact(path); !st.ok()) return st;
    return std::shared_ptr<core::RaceForecaster>(std::move(model));
  };
}

struct CounterDeltas {
  std::uint64_t online_promoted, online_rejected, online_rolled_back,
      online_steps, registry_promoted, registry_rolled_back;
  static CounterDeltas snapshot() {
    auto& reg = obs::Registry::instance();
    return {reg.counter("serve.online.promoted").value(),
            reg.counter("serve.online.rejected_gate").value(),
            reg.counter("serve.online.rolled_back").value(),
            reg.counter("serve.online.steps").value(),
            reg.counter("serve.registry.promoted").value(),
            reg.counter("serve.registry.rolled_back").value()};
  }
};

/// Serialized medians through the active engine — the "what clients see
/// right now" byte probe (same idiom as the registry fault tests).
std::vector<double> serve_once(serve::ModelRegistry& registry,
                               const telemetry::RaceLog& race) {
  auto model = registry.active();
  EXPECT_NE(model, nullptr);
  util::Rng rng(77);
  const auto samples = model->engine->forecast(race, 30, 5, 4, rng);
  std::vector<double> flat;
  for (const auto& [car_id, m] : samples) {
    const auto median = core::median_trajectory(m);
    flat.insert(flat.end(), median.begin(), median.end());
  }
  EXPECT_FALSE(flat.empty());
  return flat;
}

bool same_bytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct ScenarioResult {
  std::string trace;
  std::size_t promoted = 0, rejected = 0, rolled_back = 0, steps = 0;
};

/// The full scripted soak at one engine thread count. All randomness is
/// seeded and time is a scripted counter, so two runs with the same
/// `engine_threads` — or different ones — must produce identical traces.
ScenarioResult run_scenario(std::size_t engine_threads) {
  const std::string dir =
      "/tmp/ranknet_online_soak_t" + std::to_string(engine_threads);
  std::filesystem::create_directories(dir);

  const auto before = CounterDeltas::snapshot();

  // Scripted clock: every read advances 1ms. Latency becomes a function of
  // the (deterministic) clock-call sequence, not the wall.
  auto now = std::make_shared<double>(0.0);
  util::ClockFn clock = [now] {
    *now += 1e-3;
    return *now;
  };

  serve::RegistryConfig rcfg;
  rcfg.shards = 1;
  rcfg.engine_threads = engine_threads;
  rcfg.gate.max_prediction_failure_rate = 1.0;  // trainer's gate is in charge
  rcfg.probation_requests = 0;  // probation is driven by the trainer here
  serve::ModelRegistry registry(affine_factory(), rcfg);
  registry.set_clock(clock);

  // Mediocre initial champion: every prediction is 3 ranks off.
  const std::string champion_path = dir + "/champion.bin";
  serve::AffineRankModel::save_artifact(champion_path, 1.0, 3.0);
  EXPECT_TRUE(registry.init(champion_path).ok());

  // Sabotage switch: when armed, the fitter emits a grossly biased model
  // instead of the honest refit — the "bad model slips a permissive gate"
  // actor of the rollback act.
  auto sabotage = std::make_shared<bool>(false);
  auto honest = serve::make_affine_fitter({/*horizon=*/5, /*decay=*/0.9});
  core::CandidateFitter fitter =
      [sabotage, honest](const telemetry::RaceWindow& train,
                         std::uint64_t seed, const std::string& path)
      -> util::Result<core::FittedCandidate> {
    if (*sabotage) {
      serve::AffineRankModel::save_artifact(path, 1.0, 50.0);
      core::FittedCandidate out;
      out.forecaster = std::make_shared<serve::AffineRankModel>(1.0, 50.0);
      out.artifact_path = path;
      out.summary = "sabotage offset=50";
      return out;
    }
    return honest(train, seed, path);
  };

  serve::OnlineLoopConfig lcfg;
  lcfg.trainer.train_window = 3;
  lcfg.trainer.probe_window = 2;
  lcfg.trainer.probe.origin_laps = {30, 45};
  lcfg.trainer.probe.horizon = 5;
  lcfg.trainer.probe.num_samples = 4;
  lcfg.trainer.probe.seed = 0x50a5;
  lcfg.trainer.gate.max_nll_delta = 0.0;
  lcfg.trainer.gate.max_mae_delta = 0.0;
  lcfg.trainer.gate.max_prediction_failure_rate = 0.0;
  lcfg.trainer.probation_steps = 2;
  lcfg.trainer.rollback_mae_margin = 0.5;
  lcfg.trainer.artifact_dir = dir;
  lcfg.trainer.seed = 42;
  serve::OnlineLoop loop(registry, fitter, lcfg);
  loop.trainer().set_clock(clock);

  const core::OnlineGateConfig strict = lcfg.trainer.gate;

  // --- Act 1: clean-ish feed; the honest refit beats the offset-3 champion.
  std::vector<telemetry::RaceLog> clean_races;
  std::vector<core::TraceEvent> events;
  sim::FaultProfile light;
  light.drop_rate = 0.02;
  light.duplicate_rate = 0.02;
  light.reorder_depth = 2;
  for (int k = 0; k < 6; ++k) {
    const auto race = sim::simulate_race(
        {"Indy500", 2013 + k, 60, sim::Usage::kTest});
    clean_races.push_back(race);
    sim::FaultInjector feed(race.records(), light, 900 + k);
    (void)loop.ingest_race(race.info(), feed.drain());
    events.push_back(loop.step());
  }
  std::size_t act1_promotions = 0;
  for (const auto& e : events) {
    if (e.action == core::TraceEvent::Action::kPromoted) ++act1_promotions;
  }
  EXPECT_GE(act1_promotions, 1u)
      << "the honest refit never beat the offset-3 champion";

  // --- Act 2: tighten the gate beyond satisfiability; the step must reject.
  core::OnlineGateConfig impossible = strict;
  impossible.max_mae_delta = -1000.0;  // nothing beats the champion by 1000
  loop.trainer().gate().set_config(impossible);
  {
    const auto race = sim::simulate_race(
        {"Indy500", 2019, 60, sim::Usage::kTest});
    sim::FaultProfile heavy = light;
    heavy.corrupt_rate = 0.3;
    sim::FaultInjector feed(race.records(), heavy, 906);
    (void)loop.ingest_race(race.info(), feed.drain());
    events.push_back(loop.step());
    EXPECT_EQ(events.back().action, core::TraceEvent::Action::kRejectedGate);
  }

  // --- Act 3: permissive gate + sabotaged fitter — the degraded candidate
  // is promoted (this is the failure mode probation exists for).
  const auto baseline = serve_once(registry, clean_races.front());
  core::OnlineGateConfig permissive = strict;
  permissive.max_nll_delta = 1e9;
  permissive.max_mae_delta = 1e9;
  permissive.max_prediction_failure_rate = 1.0;
  loop.trainer().gate().set_config(permissive);
  *sabotage = true;
  events.push_back(loop.step());
  EXPECT_EQ(events.back().action, core::TraceEvent::Action::kPromoted)
      << events.back().detail;
  *sabotage = false;
  loop.trainer().gate().set_config(strict);
  EXPECT_FALSE(same_bytes(serve_once(registry, clean_races.front()), baseline))
      << "sabotaged model did not change serving output";

  // --- Act 4: the next step's probation check sees the displaced champion
  // beating the sabotaged one by miles and rolls back, byte-restoring the
  // pre-sabotage serving output.
  events.push_back(loop.step());
  EXPECT_EQ(events.back().action, core::TraceEvent::Action::kRolledBack)
      << events.back().detail;
  EXPECT_TRUE(same_bytes(serve_once(registry, clean_races.front()), baseline))
      << "rollback did not restore the pre-sabotage champion's bytes";

  ScenarioResult result;
  result.trace = loop.trainer().trace_string();
  result.steps = events.size();
  for (const auto& e : events) {
    switch (e.action) {
      case core::TraceEvent::Action::kPromoted: ++result.promoted; break;
      case core::TraceEvent::Action::kRejectedGate: ++result.rejected; break;
      case core::TraceEvent::Action::kRolledBack: ++result.rolled_back; break;
      default: break;
    }
  }
  EXPECT_GE(result.promoted, 2u);   // at least the honest + sabotage swaps
  EXPECT_GE(result.rejected, 1u);
  EXPECT_GE(result.rolled_back, 1u);

  // --- Byte accounting: every lifecycle transition of this scenario — and
  // nothing else — must appear in the serve.online.* counters, and the
  // registry must have performed exactly the promoted/rolled-back swaps the
  // trace claims (init books one extra registry promotion).
  const auto after = CounterDeltas::snapshot();
  EXPECT_EQ(after.online_steps - before.online_steps, result.steps);
  EXPECT_EQ(after.online_promoted - before.online_promoted, result.promoted);
  EXPECT_EQ(after.online_rejected - before.online_rejected, result.rejected);
  EXPECT_EQ(after.online_rolled_back - before.online_rolled_back,
            result.rolled_back);
  EXPECT_EQ(after.registry_promoted - before.registry_promoted,
            result.promoted + 1);
  EXPECT_EQ(after.registry_rolled_back - before.registry_rolled_back,
            result.rolled_back);
  return result;
}

TEST(OnlineSoak, FullLifecycleDeterministicAcrossThreadCounts) {
  const auto t0 = std::chrono::steady_clock::now();

  const auto base = run_scenario(1);
  ASSERT_FALSE(base.trace.empty());

  // Same scenario, same trace — byte for byte — at 2 and 8 engine threads
  // (the champion is scored through the parallel engine, whose forecasts
  // are thread-count invariant), and on a same-thread-count rerun.
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto other = run_scenario(threads);
    EXPECT_EQ(base.trace, other.trace) << "trace diverged at " << threads
                                       << " engine threads";
  }
  const auto rerun = run_scenario(1);
  EXPECT_EQ(base.trace, rerun.trace) << "trace diverged between reruns";

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!kSanitizerBuild) {
    EXPECT_LT(seconds, 5.0) << "online soak exceeded its tier-1 wall budget";
  }
}

}  // namespace

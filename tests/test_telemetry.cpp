#include <gtest/gtest.h>

#include "telemetry/analysis.hpp"
#include "telemetry/race_log.hpp"

namespace {

using namespace ranknet::telemetry;

EventInfo tiny_event() {
  EventInfo info;
  info.name = "Tiny";
  info.year = 2020;
  info.total_laps = 4;
  return info;
}

/// Two cars, four laps; car 2 pits on lap 3 under yellow and drops a rank.
std::vector<LapRecord> tiny_records() {
  std::vector<LapRecord> recs;
  auto add = [&](int rank, int car, int lap, double lt, double tbl,
                 LapStatus ls, TrackStatus ts) {
    recs.push_back({rank, car, lap, lt, tbl, ls, ts});
  };
  add(1, 1, 1, 50.0, 0.0, LapStatus::kNormal, TrackStatus::kGreen);
  add(2, 2, 1, 50.5, 0.5, LapStatus::kNormal, TrackStatus::kGreen);
  add(1, 2, 2, 49.0, 0.0, LapStatus::kNormal, TrackStatus::kGreen);
  add(2, 1, 2, 51.0, 1.5, LapStatus::kNormal, TrackStatus::kGreen);
  add(1, 1, 3, 80.0, 0.0, LapStatus::kNormal, TrackStatus::kYellow);
  add(2, 2, 3, 95.0, 10.0, LapStatus::kPit, TrackStatus::kYellow);
  add(1, 1, 4, 80.0, 0.0, LapStatus::kNormal, TrackStatus::kYellow);
  add(2, 2, 4, 81.0, 1.0, LapStatus::kNormal, TrackStatus::kYellow);
  return recs;
}

TEST(RaceLog, BuildsPerCarViews) {
  RaceLog race(tiny_event(), tiny_records());
  EXPECT_EQ(race.num_laps(), 4);
  EXPECT_EQ(race.car_ids(), (std::vector<int>{1, 2}));
  const auto& car2 = race.car(2);
  EXPECT_EQ(car2.laps(), 4u);
  EXPECT_DOUBLE_EQ(car2.rank[0], 2.0);
  EXPECT_DOUBLE_EQ(car2.rank[1], 1.0);
  EXPECT_TRUE(car2.pit(2));
  EXPECT_TRUE(car2.yellow(2));
  EXPECT_EQ(car2.pit_laps(), (std::vector<std::size_t>{2}));
}

TEST(RaceLog, UnknownCarThrows) {
  RaceLog race(tiny_event(), tiny_records());
  EXPECT_THROW(race.car(99), std::out_of_range);
}

TEST(RaceLog, NonContiguousLapsRejected) {
  auto recs = tiny_records();
  recs.push_back({1, 1, 6, 50.0, 0.0, LapStatus::kNormal,
                  TrackStatus::kGreen});  // lap 5 missing
  EXPECT_THROW(RaceLog(tiny_event(), std::move(recs)),
               std::invalid_argument);
}

TEST(RaceLog, CsvRoundTrip) {
  RaceLog race(tiny_event(), tiny_records());
  const auto csv = race.to_csv();
  const auto back = RaceLog::from_csv(tiny_event(), csv);
  EXPECT_EQ(back.num_records(), race.num_records());
  EXPECT_EQ(back.num_laps(), race.num_laps());
  const auto& car2 = back.car(2);
  EXPECT_TRUE(car2.pit(2));
  EXPECT_NEAR(car2.lap_time[2], 95.0, 1e-6);
  EXPECT_EQ(back.id(), "Tiny-2020");
}

TEST(Analysis, PitStopExtraction) {
  RaceLog race(tiny_event(), tiny_records());
  const auto pits = extract_pit_stops(race, 1);
  ASSERT_EQ(pits.size(), 1u);
  EXPECT_EQ(pits[0].car_id, 2);
  EXPECT_EQ(pits[0].lap, 3);
  EXPECT_TRUE(pits[0].caution);
  EXPECT_EQ(pits[0].stint_distance, 2);
  // rank before (lap 2: rank 1) vs one lap after (lap 4: rank 2).
  EXPECT_EQ(pits[0].rank_change, 1);
}

TEST(Analysis, Ratios) {
  RaceLog race(tiny_event(), tiny_records());
  EXPECT_NEAR(pit_laps_ratio(race), 1.0 / 8.0, 1e-12);
  // Car 1: changes at lap 2->? ranks 1,2,1,1 => changes at laps 2,3.
  // Car 2: ranks 2,1,2,2 => changes at laps 2,3. Total 4 changes / 6 pairs.
  EXPECT_NEAR(rank_changes_ratio(race), 4.0 / 6.0, 1e-12);
  EXPECT_EQ(caution_lap_records(race), 4u);
}

TEST(Analysis, WinnerIsLongestThenBestRank) {
  RaceLog race(tiny_event(), tiny_records());
  EXPECT_EQ(race.winner(), 1);
}

}  // namespace

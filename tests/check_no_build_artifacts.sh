#!/usr/bin/env bash
# Repo-hygiene gate: fail if build output is tracked by git.
#
# The build tree (build*/), object files, and CMake cache/Testing state must
# never be committed — they bloat the history and break out-of-tree builds.
# Run from anywhere; the repo root is resolved from this script's location.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root" || exit 1

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "SKIP: not a git checkout (source tarball?)"
  exit 0
fi

bad=$(git ls-files | grep -E \
  '^build[^/]*/|(^|/)CMakeCache\.txt$|(^|/)CMakeFiles/|(^|/)Testing/|\.o$|\.a$' )

if [ -n "$bad" ]; then
  echo "FAIL: build artifacts are tracked by git:"
  echo "$bad" | head -20
  echo "Remove them with: git rm -r --cached <path> (see .gitignore)"
  exit 1
fi

echo "OK: no tracked build artifacts"
exit 0

// Tests of the model zoo: canonical configurations, cache-key behavior and
// validation splitting. Training itself is covered by test_integration.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/registry.hpp"

namespace {

using namespace ranknet;
using core::ModelZoo;

TEST(ZooConfig, ArtifactsDirDefaultsAndEnvOverride) {
  core::ZooConfig cfg;
  EXPECT_FALSE(cfg.artifacts_dir.empty());
  EXPECT_GT(cfg.train.max_epochs, 0);
}

TEST(WindowConfigs, RanknetMatchesPaperTableIV) {
  const auto w = ModelZoo::ranknet_window_config();
  EXPECT_EQ(w.encoder_length, 60);   // Table IV: encoder length 60
  EXPECT_EQ(w.decoder_length, 2);    // Table IV: decoder length 2
  EXPECT_EQ(w.change_weight, 9.0);   // Fig. 7: optimal loss weight 9
  EXPECT_EQ(w.covariates.dim(), 9u); // full covariate set
}

TEST(WindowConfigs, DeepArHasNoCovariates) {
  const auto w = ModelZoo::deepar_window_config();
  EXPECT_EQ(w.covariates.dim(), 0u);
}

TEST(WindowConfigs, JointKeepsOnlyRaceStatus) {
  const auto w = ModelZoo::joint_window_config();
  EXPECT_TRUE(w.covariates.race_status);
  EXPECT_FALSE(w.covariates.age_features);
  EXPECT_FALSE(w.covariates.context_features);
  EXPECT_FALSE(w.covariates.shift_features);
  EXPECT_EQ(w.covariates.dim(), 2u);
}

TEST(CacheKeys, WindowKeyDistinguishesConfigs) {
  const auto base = ModelZoo::ranknet_window_config();
  auto weights_off = base;
  weights_off.change_weight = 1.0;
  auto shorter = base;
  shorter.encoder_length = 40;
  auto no_shift = base;
  no_shift.covariates.shift_features = false;
  const auto k0 = ModelZoo::window_key(base);
  EXPECT_NE(k0, ModelZoo::window_key(weights_off));
  EXPECT_NE(k0, ModelZoo::window_key(shorter));
  EXPECT_NE(k0, ModelZoo::window_key(no_shift));
  EXPECT_EQ(k0, ModelZoo::window_key(base));  // stable
}

TEST(CacheKeys, ModelAndTrainConfigKeysAreStable) {
  core::SeqModelConfig a, b;
  EXPECT_EQ(a.cache_key(), b.cache_key());
  b.hidden = 64;
  EXPECT_NE(a.cache_key(), b.cache_key());
  core::TrainConfig t1, t2;
  EXPECT_EQ(t1.cache_key(), t2.cache_key());
  t2.max_windows += 1;
  EXPECT_NE(t1.cache_key(), t2.cache_key());
  core::TransformerConfig tf1, tf2;
  EXPECT_EQ(tf1.cache_key(), tf2.cache_key());
  tf2.heads = 4;
  EXPECT_NE(tf1.cache_key(), tf2.cache_key());
  core::PitModelConfig p1, p2;
  EXPECT_EQ(p1.cache_key(), p2.cache_key());
  p2.min_stint = 3;
  EXPECT_NE(p1.cache_key(), p2.cache_key());
}

TEST(DefaultTrainConfig, FastEnvShrinksBudget) {
  const auto base = core::default_train_config();
  ::setenv("RANKNET_FAST", "1", 1);
  const auto fast = core::default_train_config();
  ::unsetenv("RANKNET_FAST");
  EXPECT_LT(fast.max_epochs, base.max_epochs);
  EXPECT_LT(fast.max_windows, base.max_windows);
}

}  // namespace

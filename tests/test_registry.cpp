// Tests of the model zoo: canonical configurations, cache-key behavior and
// validation splitting. Training itself is covered by test_integration.
// Also: the serving ModelRegistry's hot-swap fault coverage — a corrupt or
// truncated candidate artifact must never disturb the active model, a wild
// candidate must die at the shadow gate, and a bad model that slips through
// a permissive gate must be auto-rolled-back by probation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "obs/metrics.hpp"
#include "serve/affine_model.hpp"
#include "serve/model_registry.hpp"
#include "simulator/season.hpp"

namespace {

using namespace ranknet;
using core::ModelZoo;
namespace wire = serve::wire;

TEST(ZooConfig, ArtifactsDirDefaultsAndEnvOverride) {
  core::ZooConfig cfg;
  EXPECT_FALSE(cfg.artifacts_dir.empty());
  EXPECT_GT(cfg.train.max_epochs, 0);
}

TEST(WindowConfigs, RanknetMatchesPaperTableIV) {
  const auto w = ModelZoo::ranknet_window_config();
  EXPECT_EQ(w.encoder_length, 60);   // Table IV: encoder length 60
  EXPECT_EQ(w.decoder_length, 2);    // Table IV: decoder length 2
  EXPECT_EQ(w.change_weight, 9.0);   // Fig. 7: optimal loss weight 9
  EXPECT_EQ(w.covariates.dim(), 9u); // full covariate set
}

TEST(WindowConfigs, DeepArHasNoCovariates) {
  const auto w = ModelZoo::deepar_window_config();
  EXPECT_EQ(w.covariates.dim(), 0u);
}

TEST(WindowConfigs, JointKeepsOnlyRaceStatus) {
  const auto w = ModelZoo::joint_window_config();
  EXPECT_TRUE(w.covariates.race_status);
  EXPECT_FALSE(w.covariates.age_features);
  EXPECT_FALSE(w.covariates.context_features);
  EXPECT_FALSE(w.covariates.shift_features);
  EXPECT_EQ(w.covariates.dim(), 2u);
}

TEST(CacheKeys, WindowKeyDistinguishesConfigs) {
  const auto base = ModelZoo::ranknet_window_config();
  auto weights_off = base;
  weights_off.change_weight = 1.0;
  auto shorter = base;
  shorter.encoder_length = 40;
  auto no_shift = base;
  no_shift.covariates.shift_features = false;
  const auto k0 = ModelZoo::window_key(base);
  EXPECT_NE(k0, ModelZoo::window_key(weights_off));
  EXPECT_NE(k0, ModelZoo::window_key(shorter));
  EXPECT_NE(k0, ModelZoo::window_key(no_shift));
  EXPECT_EQ(k0, ModelZoo::window_key(base));  // stable
}

TEST(CacheKeys, ModelAndTrainConfigKeysAreStable) {
  core::SeqModelConfig a, b;
  EXPECT_EQ(a.cache_key(), b.cache_key());
  b.hidden = 64;
  EXPECT_NE(a.cache_key(), b.cache_key());
  core::TrainConfig t1, t2;
  EXPECT_EQ(t1.cache_key(), t2.cache_key());
  t2.max_windows += 1;
  EXPECT_NE(t1.cache_key(), t2.cache_key());
  core::TransformerConfig tf1, tf2;
  EXPECT_EQ(tf1.cache_key(), tf2.cache_key());
  tf2.heads = 4;
  EXPECT_NE(tf1.cache_key(), tf2.cache_key());
  core::PitModelConfig p1, p2;
  EXPECT_EQ(p1.cache_key(), p2.cache_key());
  p2.min_stint = 3;
  EXPECT_NE(p1.cache_key(), p2.cache_key());
}

TEST(DefaultTrainConfig, FastEnvShrinksBudget) {
  const auto base = core::default_train_config();
  ::setenv("RANKNET_FAST", "1", 1);
  const auto fast = core::default_train_config();
  ::unsetenv("RANKNET_FAST");
  EXPECT_LT(fast.max_epochs, base.max_epochs);
  EXPECT_LT(fast.max_windows, base.max_windows);
}

// ---------------------------------------------------------------------------
// ModelRegistry hot-swap fault coverage
// ---------------------------------------------------------------------------

serve::ModelFactory affine_factory() {
  return [](const std::string& path)
             -> util::Result<std::shared_ptr<core::RaceForecaster>> {
    auto model = std::make_shared<serve::AffineRankModel>();
    if (auto st = model->load_artifact(path); !st.ok()) return st;
    return std::shared_ptr<core::RaceForecaster>(std::move(model));
  };
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class HotSwapFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 60, sim::Usage::kTest}));
  }
  static void TearDownTestSuite() {
    delete race_;
    race_ = nullptr;
  }

  std::unique_ptr<serve::ModelRegistry> make_registry(
      double max_failure_rate = 0.0) {
    serve::RegistryConfig cfg;
    cfg.engine_threads = 0;  // inline: these tests probe policy, not speed
    cfg.gate.probe_origin_lap = 30;
    cfg.gate.probe_horizon = 5;
    cfg.gate.probe_num_samples = 4;
    cfg.gate.max_prediction_failure_rate = max_failure_rate;
    cfg.probation_requests = 8;
    auto registry =
        std::make_unique<serve::ModelRegistry>(affine_factory(), cfg);
    registry->set_probe_race(*race_);
    return registry;
  }

  /// Serialized medians of a forecast through the active engine — the
  /// byte-level "what clients are being served right now" probe.
  static std::vector<double> serve_once(serve::ModelRegistry& registry) {
    auto model = registry.active();
    EXPECT_NE(model, nullptr);
    util::Rng rng(77);
    const auto samples = model->engine->forecast(*race_, 30, 5, 4, rng);
    std::vector<double> flat;
    for (const auto& [car_id, m] : samples) {
      const auto median = core::median_trajectory(m);
      flat.insert(flat.end(), median.begin(), median.end());
    }
    EXPECT_FALSE(flat.empty());
    return flat;
  }

  static telemetry::RaceLog* race_;
};

telemetry::RaceLog* HotSwapFaultTest::race_ = nullptr;

TEST_F(HotSwapFaultTest, BitFlippedCandidateIsRejectedAndActiveKeepsServing) {
  const std::string good = "/tmp/ranknet_swap_good.bin";
  const std::string cand = "/tmp/ranknet_swap_flip.bin";
  serve::AffineRankModel::save_artifact(good, 1.0, 0.0);
  auto registry = make_registry();
  ASSERT_TRUE(registry->init(good).ok());
  const auto baseline = serve_once(*registry);

  serve::AffineRankModel::save_artifact(cand, 2.0, 1.0);
  const auto clean = read_file(cand);
  ASSERT_FALSE(clean.empty());
  // Flip one bit at several offsets spanning header, checksum and payload:
  // every one must die in the stage step, before publish.
  for (std::size_t pos : {std::size_t{0}, clean.size() / 3, clean.size() / 2,
                          clean.size() - 1}) {
    auto corrupt = clean;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    write_file(cand, corrupt);
    const auto outcome = registry->swap(cand);
    EXPECT_EQ(outcome.action, wire::SwapAction::kRejected) << "pos " << pos;
    EXPECT_FALSE(outcome.status.ok());
    EXPECT_EQ(registry->active_version(), 1u);
    // The active model still serves byte-identical forecasts.
    const auto now = serve_once(*registry);
    ASSERT_EQ(now.size(), baseline.size());
    EXPECT_EQ(std::memcmp(now.data(), baseline.data(),
                          now.size() * sizeof(double)),
              0) << "serving output changed after rejected swap at " << pos;
  }

  // The intact candidate still promotes — the rejections above were the
  // artifact's fault, not a wedged registry.
  write_file(cand, clean);
  const auto outcome = registry->swap(cand);
  EXPECT_EQ(outcome.action, wire::SwapAction::kPromoted);
  EXPECT_EQ(registry->active_version(), 2u);
}

TEST_F(HotSwapFaultTest, TruncatedCandidateIsRejectedAndActiveKeepsServing) {
  const std::string good = "/tmp/ranknet_swap_good2.bin";
  const std::string cand = "/tmp/ranknet_swap_trunc.bin";
  serve::AffineRankModel::save_artifact(good, 1.0, 0.0);
  auto registry = make_registry();
  ASSERT_TRUE(registry->init(good).ok());
  const auto baseline = serve_once(*registry);

  serve::AffineRankModel::save_artifact(cand, 0.5, 2.0);
  const auto clean = read_file(cand);
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, clean.size() / 2,
                           clean.size() - 1}) {
    write_file(cand, {clean.begin(), clean.begin() +
                                         static_cast<std::ptrdiff_t>(keep)});
    const auto outcome = registry->swap(cand);
    EXPECT_EQ(outcome.action, wire::SwapAction::kRejected) << "keep " << keep;
    EXPECT_EQ(registry->active_version(), 1u);
    const auto now = serve_once(*registry);
    EXPECT_EQ(std::memcmp(now.data(), baseline.data(),
                          now.size() * sizeof(double)),
              0);
  }
  EXPECT_EQ(registry->swap("/tmp/ranknet_swap_missing_file.bin").action,
            wire::SwapAction::kRejected);
  EXPECT_EQ(registry->active_version(), 1u);
}

TEST_F(HotSwapFaultTest, ShadowGateRejectsWildCoefficients) {
  const std::string good = "/tmp/ranknet_swap_good3.bin";
  const std::string wild = "/tmp/ranknet_swap_wild.bin";
  serve::AffineRankModel::save_artifact(good, 1.0, 0.0);
  // Checksums fine, coefficients insane: only the shadow gate catches it.
  serve::AffineRankModel::save_artifact(wild, 1.0, 1e9);
  auto registry = make_registry(/*max_failure_rate=*/0.0);
  ASSERT_TRUE(registry->init(good).ok());
  const auto before = obs::Registry::instance()
                          .counter("serve.registry.rejected_gate")
                          .value();
  const auto outcome = registry->swap(wild);
  EXPECT_EQ(outcome.action, wire::SwapAction::kRejected);
  EXPECT_EQ(outcome.status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry->active_version(), 1u);
  EXPECT_GT(obs::Registry::instance()
                .counter("serve.registry.rejected_gate")
                .value(),
            before);
}

TEST_F(HotSwapFaultTest, ProbationFailureAutoRollsBackToPreviousVersion) {
  const std::string v1 = "/tmp/ranknet_swap_v1.bin";
  const std::string v2 = "/tmp/ranknet_swap_v2.bin";
  const std::string bad = "/tmp/ranknet_swap_nan.bin";
  serve::AffineRankModel::save_artifact(v1, 1.0, 0.0);
  serve::AffineRankModel::save_artifact(v2, 1.1, 0.0);
  serve::AffineRankModel::save_artifact(
      bad, std::numeric_limits<double>::quiet_NaN(), 0.0);
  // Permissive gate: the NaN model slips through — production feedback is
  // the last line of defense.
  auto registry = make_registry(/*max_failure_rate=*/1.0);
  ASSERT_TRUE(registry->init(v1).ok());
  ASSERT_EQ(registry->swap(v2).action, wire::SwapAction::kPromoted);
  ASSERT_EQ(registry->active_version(), 2u);
  ASSERT_EQ(registry->swap(bad).action, wire::SwapAction::kPromoted);
  ASSERT_EQ(registry->active_version(), 3u);

  const auto rolled_before = obs::Registry::instance()
                                 .counter("serve.registry.rolled_back")
                                 .value();
  // First unhealthy serving result inside the probation window fires the
  // rollback; the restored version serves finite forecasts again.
  EXPECT_TRUE(registry->record_serving_result(3, /*ok=*/false));
  EXPECT_EQ(registry->active_version(), 2u);
  EXPECT_GT(obs::Registry::instance()
                .counter("serve.registry.rolled_back")
                .value(),
            rolled_before);
  for (double v : serve_once(*registry)) EXPECT_TRUE(std::isfinite(v));

  // Stale feedback about the rolled-back version is ignored.
  EXPECT_FALSE(registry->record_serving_result(3, false));
  EXPECT_EQ(registry->active_version(), 2u);
}

TEST_F(HotSwapFaultTest, LatencyGateRejectsSlowCandidateUnderScriptedClock) {
  // Regression for the clock injection (set_clock): pre-fix the gate timed
  // probes with util::Timer directly, so this test was impossible — wall
  // time on a shared box is not a function of the candidate, and any forced
  // version (spin in the forecaster) was flaky by construction. With the
  // scripted clock, probe latency is exactly the per-call step we choose.
  const std::string good = "/tmp/ranknet_swap_lat_good.bin";
  const std::string cand = "/tmp/ranknet_swap_lat_cand.bin";
  serve::AffineRankModel::save_artifact(good, 1.0, 0.0);
  serve::AffineRankModel::save_artifact(cand, 1.0, 0.5);

  serve::RegistryConfig cfg;
  cfg.engine_threads = 0;
  cfg.gate.probe_origin_lap = 30;
  cfg.gate.probe_horizon = 5;
  cfg.gate.probe_num_samples = 4;
  cfg.gate.max_prediction_failure_rate = 1.0;
  cfg.gate.max_latency_factor = 3.0;
  auto registry = std::make_unique<serve::ModelRegistry>(affine_factory(), cfg);
  registry->set_probe_race(*race_);
  auto now = std::make_shared<double>(0.0);
  auto step = std::make_shared<double>(1e-3);
  registry->set_clock([now, step] { return *now += *step; });

  // Init's probe (2 clock reads) books the active latency reference: 1ms.
  ASSERT_TRUE(registry->init(good).ok());

  // A candidate whose probe takes 1s blows the 3x budget and is rejected
  // with the latency verdict in the status.
  *step = 1.0;
  const auto slow = registry->swap(cand);
  EXPECT_EQ(slow.action, wire::SwapAction::kRejected);
  EXPECT_NE(slow.status.message().find("latency"), std::string::npos)
      << slow.status.to_string();
  EXPECT_EQ(registry->active_version(), 1u);

  // The same artifact probed at champion speed promotes: the rejection was
  // the latency, not the bytes.
  *step = 1e-3;
  EXPECT_EQ(registry->swap(cand).action, wire::SwapAction::kPromoted);
}

TEST_F(HotSwapFaultTest, ProbationTimeWindowExpiresUnderScriptedClock) {
  // probation_seconds bounds the probation window in time: once it elapses,
  // the version is trusted even though fewer than probation_requests
  // results arrived — a low-traffic deployment must not sit on probation
  // (and keep a rollback hair-trigger armed) forever.
  const std::string v1 = "/tmp/ranknet_swap_ptime1.bin";
  const std::string v2 = "/tmp/ranknet_swap_ptime2.bin";
  serve::AffineRankModel::save_artifact(v1, 1.0, 0.0);
  serve::AffineRankModel::save_artifact(v2, 1.1, 0.0);

  serve::RegistryConfig cfg;
  cfg.engine_threads = 0;
  cfg.probation_requests = 1000;  // request count alone would never close it
  cfg.probation_seconds = 10.0;
  // No probe race: the shadow gate is skipped, so the scripted clock is
  // consumed only by the probation machinery.
  auto registry = std::make_unique<serve::ModelRegistry>(affine_factory(), cfg);
  auto now = std::make_shared<double>(0.0);
  registry->set_clock([now] { return *now; });

  ASSERT_TRUE(registry->init(v1).ok());
  ASSERT_EQ(registry->swap(v2).action, wire::SwapAction::kPromoted);
  ASSERT_EQ(registry->active_version(), 2u);

  // Inside the window a failure still trips the rollback hair-trigger...
  *now = 5.0;
  // ...which we prove by NOT failing: healthy results keep the version.
  EXPECT_FALSE(registry->record_serving_result(2, /*ok=*/true));
  EXPECT_EQ(registry->active_version(), 2u);

  // Past the deadline the version is trusted: even an unhealthy result no
  // longer rolls back (probation is over, the failure is ordinary ops).
  *now = 10.0;
  EXPECT_FALSE(registry->record_serving_result(2, /*ok=*/false));
  EXPECT_EQ(registry->active_version(), 2u);

  // And a fresh promotion re-arms the window relative to the new publish:
  // an in-window failure on the new version does roll back.
  const std::string v3 = "/tmp/ranknet_swap_ptime3.bin";
  serve::AffineRankModel::save_artifact(v3, 0.9, 0.0);
  ASSERT_EQ(registry->swap(v3).action, wire::SwapAction::kPromoted);
  ASSERT_EQ(registry->active_version(), 3u);
  *now = 15.0;  // publish was at 10.0; deadline is 20.0
  EXPECT_TRUE(registry->record_serving_result(3, /*ok=*/false));
  EXPECT_EQ(registry->active_version(), 2u);
}

}  // namespace

// Numerical gradient checks for every hand-written backward pass.
//
// Each check perturbs parameters (and inputs) with central differences and
// compares against the analytic gradients. A scalar loss L = sum(w ⊙ out)
// with fixed random weights exercises all output positions.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.hpp"
#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/gaussian.hpp"
#include "nn/layer_norm.hpp"
#include "nn/lstm.hpp"

namespace {

using ranknet::nn::Activation;
using ranknet::nn::Dense;
using ranknet::nn::Embedding;
using ranknet::nn::GaussianHead;
using ranknet::nn::LayerNorm;
using ranknet::nn::LstmLayer;
using ranknet::nn::MultiHeadSelfAttention;
using ranknet::nn::Parameter;
using ranknet::nn::TransformerBlock;
using ranknet::tensor::Matrix;
using ranknet::util::Rng;

constexpr double kEps = 1e-5;
constexpr double kTol = 2e-5;  // relative-ish tolerance for doubles

/// Compare analytic parameter gradients of `loss_fn` (which must run
/// forward+backward, accumulating grads) against central differences.
void check_param_grads(std::vector<Parameter*> params,
                       const std::function<double()>& loss_fn,
                       const std::function<void()>& zero_grad,
                       int max_checks_per_param = 8) {
  zero_grad();
  loss_fn();
  // Snapshot analytic grads.
  std::vector<Matrix> analytic;
  for (auto* p : params) analytic.push_back(p->grad);

  Rng pick(123);
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto* p = params[pi];
    const std::size_t n = p->value.size();
    for (int c = 0; c < max_checks_per_param; ++c) {
      const auto idx = static_cast<std::size_t>(
          pick.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const double saved = p->value.flat()[idx];
      p->value.flat()[idx] = saved + kEps;
      zero_grad();
      const double lp = loss_fn();
      p->value.flat()[idx] = saved - kEps;
      zero_grad();
      const double lm = loss_fn();
      p->value.flat()[idx] = saved;
      const double numeric = (lp - lm) / (2 * kEps);
      const double exact = analytic[pi].flat()[idx];
      const double scale = std::max({1.0, std::abs(numeric), std::abs(exact)});
      EXPECT_NEAR(numeric, exact, kTol * scale)
          << "param " << p->name << " index " << idx;
    }
  }
}

/// Random "loss weights" matrix so the scalar loss covers every output.
Matrix loss_weights(std::size_t rows, std::size_t cols, Rng& rng) {
  return Matrix::randn(rows, cols, rng, 1.0);
}

double weighted_sum(const Matrix& out, const Matrix& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    acc += out.flat()[i] * w.flat()[i];
  }
  return acc;
}

TEST(GradCheck, DenseLinear) {
  Rng rng(1);
  Dense layer(4, 3, rng, Activation::kNone);
  const Matrix x = Matrix::randn(5, 4, rng);
  const Matrix w = loss_weights(5, 3, rng);
  auto loss = [&] {
    const auto y = layer.forward(x);
    layer.backward(w);
    return weighted_sum(y, w);
  };
  check_param_grads(layer.params(), loss, [&] { layer.zero_grad(); });
}

TEST(GradCheck, DenseActivations) {
  for (auto act : {Activation::kRelu, Activation::kTanh,
                   Activation::kSigmoid}) {
    Rng rng(2);
    Dense layer(4, 4, rng, act);
    const Matrix x = Matrix::randn(6, 4, rng);
    const Matrix w = loss_weights(6, 4, rng);
    auto loss = [&] {
      const auto y = layer.forward(x);
      layer.backward(w);
      return weighted_sum(y, w);
    };
    check_param_grads(layer.params(), loss, [&] { layer.zero_grad(); });
  }
}

TEST(GradCheck, DenseInputGradient) {
  Rng rng(3);
  Dense layer(4, 3, rng, Activation::kTanh);
  Matrix x = Matrix::randn(2, 4, rng);
  const Matrix w = loss_weights(2, 3, rng);
  layer.zero_grad();
  layer.forward(x);
  const Matrix dx = layer.backward(w);
  for (std::size_t idx = 0; idx < x.size(); ++idx) {
    const double saved = x.flat()[idx];
    x.flat()[idx] = saved + kEps;
    const double lp = weighted_sum(layer.forward(x), w);
    x.flat()[idx] = saved - kEps;
    const double lm = weighted_sum(layer.forward(x), w);
    x.flat()[idx] = saved;
    EXPECT_NEAR((lp - lm) / (2 * kEps), dx.flat()[idx], kTol);
  }
}

TEST(GradCheck, Embedding) {
  Rng rng(4);
  Embedding emb(6, 3, rng);
  const std::vector<int> idx{0, 2, 2, 5};
  const Matrix w = loss_weights(4, 3, rng);
  auto loss = [&] {
    const auto y = emb.forward(idx);
    emb.backward(w);
    return weighted_sum(y, w);
  };
  check_param_grads(emb.params(), loss, [&] { emb.zero_grad(); }, 12);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(5);
  LayerNorm ln(6);
  const Matrix x = Matrix::randn(4, 6, rng);
  const Matrix w = loss_weights(4, 6, rng);
  auto loss = [&] {
    const auto y = ln.forward(x);
    ln.backward(w);
    return weighted_sum(y, w);
  };
  check_param_grads(ln.params(), loss, [&] { ln.zero_grad(); });
}

TEST(GradCheck, LayerNormInputGradient) {
  Rng rng(6);
  LayerNorm ln(5);
  Matrix x = Matrix::randn(3, 5, rng);
  const Matrix w = loss_weights(3, 5, rng);
  ln.zero_grad();
  ln.forward(x);
  const Matrix dx = ln.backward(w);
  for (std::size_t idx = 0; idx < x.size(); ++idx) {
    const double saved = x.flat()[idx];
    x.flat()[idx] = saved + kEps;
    const double lp = weighted_sum(ln.forward(x), w);
    x.flat()[idx] = saved - kEps;
    const double lm = weighted_sum(ln.forward(x), w);
    x.flat()[idx] = saved;
    EXPECT_NEAR((lp - lm) / (2 * kEps), dx.flat()[idx], 1e-4);
  }
}

TEST(GradCheck, LstmParams) {
  Rng rng(7);
  LstmLayer lstm(3, 4, rng);
  const std::size_t steps = 5, batch = 2;
  std::vector<Matrix> xs;
  std::vector<Matrix> ws;
  for (std::size_t t = 0; t < steps; ++t) {
    xs.push_back(Matrix::randn(batch, 3, rng));
    ws.push_back(loss_weights(batch, 4, rng));
  }
  auto loss = [&] {
    const auto hs = lstm.forward(xs);
    lstm.backward(ws);
    double acc = 0.0;
    for (std::size_t t = 0; t < steps; ++t) acc += weighted_sum(hs[t], ws[t]);
    return acc;
  };
  check_param_grads(lstm.params(), loss, [&] { lstm.zero_grad(); }, 12);
}

TEST(GradCheck, LstmInputGradient) {
  Rng rng(8);
  LstmLayer lstm(2, 3, rng);
  const std::size_t steps = 4, batch = 1;
  std::vector<Matrix> xs;
  std::vector<Matrix> ws;
  for (std::size_t t = 0; t < steps; ++t) {
    xs.push_back(Matrix::randn(batch, 2, rng));
    ws.push_back(loss_weights(batch, 3, rng));
  }
  auto run = [&] {
    const auto hs = lstm.forward(xs);
    double acc = 0.0;
    for (std::size_t t = 0; t < steps; ++t) acc += weighted_sum(hs[t], ws[t]);
    return acc;
  };
  lstm.zero_grad();
  run();
  const auto dxs = lstm.backward(ws);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t idx = 0; idx < xs[t].size(); ++idx) {
      const double saved = xs[t].flat()[idx];
      xs[t].flat()[idx] = saved + kEps;
      const double lp = run();
      xs[t].flat()[idx] = saved - kEps;
      const double lm = run();
      xs[t].flat()[idx] = saved;
      EXPECT_NEAR((lp - lm) / (2 * kEps), dxs[t].flat()[idx], 1e-4)
          << "t=" << t << " idx=" << idx;
    }
  }
}

TEST(GradCheck, LstmStepMatchesForward) {
  // The inference `step` path must reproduce the training forward exactly.
  Rng rng(9);
  LstmLayer lstm(3, 5, rng);
  std::vector<Matrix> xs;
  for (int t = 0; t < 6; ++t) xs.push_back(Matrix::randn(2, 3, rng));
  const auto hs = lstm.forward(xs);
  ranknet::nn::LstmState state;
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const auto h = lstm.step(xs[t], state);
    for (std::size_t i = 0; i < h.size(); ++i) {
      EXPECT_NEAR(h.flat()[i], hs[t].flat()[i], 1e-12);
    }
  }
}

TEST(GradCheck, LstmStepBatchedMatchesPerRow) {
  // Decoder hot-path contract: the forecaster stacks all live cars' states
  // into one (cars*samples x hidden) batch and steps them together. Each
  // row of the batched step must equal stepping that row alone — bitwise,
  // not approximately — or batch composition would leak into the samples
  // and break the parallel engine's partition invariance.
  Rng rng(21);
  LstmLayer lstm(3, 5, rng);
  const std::size_t batch = 7, steps = 4;
  std::vector<Matrix> xs;
  for (std::size_t t = 0; t < steps; ++t) {
    xs.push_back(Matrix::randn(batch, 3, rng));
  }

  ranknet::nn::LstmState batched(batch, 5);
  std::vector<ranknet::nn::LstmState> single(
      batch, ranknet::nn::LstmState(1, 5));
  for (std::size_t t = 0; t < steps; ++t) {
    const auto h_batched = lstm.step(xs[t], batched);
    for (std::size_t r = 0; r < batch; ++r) {
      Matrix row(1, 3);
      for (std::size_t c = 0; c < 3; ++c) row(0, c) = xs[t](r, c);
      const auto h_single = lstm.step(row, single[r]);
      for (std::size_t c = 0; c < 5; ++c) {
        // EXPECT_EQ on doubles: bit-equality is the requirement.
        EXPECT_EQ(h_batched(r, c), h_single(0, c))
            << "t=" << t << " row=" << r << " col=" << c;
        EXPECT_EQ(batched.h(r, c), single[r].h(0, c));
        EXPECT_EQ(batched.c(r, c), single[r].c(0, c));
      }
    }
  }
}

TEST(GradCheck, LstmParamsMultiCarBatch) {
  // Same check as LstmParams but at the stacked multi-car batch size the
  // forecaster actually uses, so the batched gate math is gradient-checked
  // beyond batch 2.
  Rng rng(22);
  LstmLayer lstm(3, 4, rng);
  const std::size_t steps = 3, batch = 6;
  std::vector<Matrix> xs;
  std::vector<Matrix> ws;
  for (std::size_t t = 0; t < steps; ++t) {
    xs.push_back(Matrix::randn(batch, 3, rng));
    ws.push_back(loss_weights(batch, 4, rng));
  }
  auto loss = [&] {
    const auto hs = lstm.forward(xs);
    lstm.backward(ws);
    double acc = 0.0;
    for (std::size_t t = 0; t < steps; ++t) acc += weighted_sum(hs[t], ws[t]);
    return acc;
  };
  check_param_grads(lstm.params(), loss, [&] { lstm.zero_grad(); }, 12);
}

TEST(GradCheck, GaussianHeadNll) {
  Rng rng(10);
  GaussianHead head(4, 2, rng);
  const Matrix h = Matrix::randn(5, 4, rng);
  const Matrix z = Matrix::randn(5, 2, rng);
  const std::vector<double> weights{1.0, 9.0, 1.0, 2.0, 0.5};
  Matrix dh;
  auto loss = [&] {
    const auto out = head.forward(h);
    return head.nll_backward(out, z, weights, dh);
  };
  check_param_grads(head.params(), loss, [&] { head.zero_grad(); }, 10);
}

TEST(GradCheck, GaussianHeadHiddenGradient) {
  Rng rng(11);
  GaussianHead head(3, 1, rng);
  Matrix h = Matrix::randn(4, 3, rng);
  const Matrix z = Matrix::randn(4, 1, rng);
  head.zero_grad();
  Matrix dh;
  const auto out = head.forward(h);
  head.nll_backward(out, z, {}, dh);
  for (std::size_t idx = 0; idx < h.size(); ++idx) {
    const double saved = h.flat()[idx];
    h.flat()[idx] = saved + kEps;
    const double lp = GaussianHead::nll(head.forward(h), z, {});
    h.flat()[idx] = saved - kEps;
    const double lm = GaussianHead::nll(head.forward(h), z, {});
    h.flat()[idx] = saved;
    EXPECT_NEAR((lp - lm) / (2 * kEps), dh.flat()[idx], 1e-4);
  }
}

TEST(GradCheck, MultiHeadAttention) {
  Rng rng(12);
  MultiHeadSelfAttention mha(8, 2, rng);
  const std::size_t seq = 4, batchseq = 2;
  const Matrix x = Matrix::randn(batchseq * seq, 8, rng, 0.5);
  const Matrix w = loss_weights(batchseq * seq, 8, rng);
  auto loss = [&] {
    const auto y = mha.forward(x, seq);
    mha.backward(w);
    return weighted_sum(y, w);
  };
  check_param_grads(mha.params(), loss, [&] { mha.zero_grad(); }, 10);
}

TEST(GradCheck, MultiHeadAttentionCausality) {
  // Changing a future input must not affect earlier outputs.
  Rng rng(13);
  MultiHeadSelfAttention mha(4, 2, rng);
  Matrix x = Matrix::randn(5, 4, rng);
  const auto y0 = mha.forward_inference(x, 5);
  x(4, 1) += 10.0;  // perturb the last timestep
  const auto y1 = mha.forward_inference(x, 5);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(y0(t, c), y1(t, c)) << "t=" << t;
    }
  }
  // ...but it must affect the perturbed step itself.
  double diff = 0.0;
  for (std::size_t c = 0; c < 4; ++c) diff += std::abs(y0(4, c) - y1(4, c));
  EXPECT_GT(diff, 1e-6);
}

TEST(GradCheck, TransformerBlock) {
  Rng rng(14);
  TransformerBlock block(8, 2, 16, rng);
  const std::size_t seq = 3, batchseq = 2;
  const Matrix x = Matrix::randn(batchseq * seq, 8, rng, 0.5);
  const Matrix w = loss_weights(batchseq * seq, 8, rng);
  auto loss = [&] {
    const auto y = block.forward(x, seq);
    block.backward(w);
    return weighted_sum(y, w);
  };
  check_param_grads(block.params(), loss, [&] { block.zero_grad(); }, 6);
}

}  // namespace

// Shared-prefix decode tree differential harness.
//
// The tree decode (DecodeMode::kTree, src/core/ranknet.cpp +
// LstmSeqModel::sample_forward_tree) claims to be BIT-identical to the
// historical independent decode while running the shared trajectory prefix
// (encoder-tail replay + first decode step) at branch width instead of row
// width. These tests prove the claim the same way the PR-5 kernel harness
// proved SIMD equivalence: compute both ways, memcmp the bytes.
//
// Coverage axes (ISSUE acceptance):
//  * every RankNet status variant — Oracle, PitModel, Joint, DeepAR,
//  * both kernel variants — the whole binary is re-run under
//    RANKNET_KERNEL=scalar|avx2 by CTest, plus an explicit in-process
//    variant-flip test,
//  * engine thread counts {1, 2, 8},
//  * ForecastCache hits byte-identical to the cold compute that filled
//    them, under the same rng protocol.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/baselines.hpp"
#include "core/device_model.hpp"
#include "core/forecast_cache.hpp"
#include "core/parallel_engine.hpp"
#include "core/ranknet.hpp"
#include "simulator/season.hpp"
#include "tensor/simd_kernels.hpp"

namespace {

using namespace ranknet;
namespace tk = tensor::kernels;

// Bytewise equality of two sample maps (same cars, same shapes, same bits).
::testing::AssertionResult SamplesIdentical(const core::RaceSamples& a,
                                            const core::RaceSamples& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "car count " << a.size() << " vs " << b.size();
  }
  for (const auto& [car_id, m] : a) {
    const auto it = b.find(car_id);
    if (it == b.end()) {
      return ::testing::AssertionFailure() << "car " << car_id << " missing";
    }
    const auto& n = it->second;
    if (m.rows() != n.rows() || m.cols() != n.cols()) {
      return ::testing::AssertionFailure()
             << "car " << car_id << " shape mismatch";
    }
    if (std::memcmp(m.flat().data(), n.flat().data(),
                    m.flat().size() * sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "car " << car_id << " bytes differ";
    }
  }
  return ::testing::AssertionSuccess();
}

class DecodeTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    race_ = new telemetry::RaceLog(
        sim::simulate_race({"Indy500", 2019, 200, sim::Usage::kTest}));
    vocab_ = new features::CarVocab({*race_});

    core::SeqModelConfig cfg;
    cfg.cov_dim = features::CovariateConfig{}.dim();
    cfg.hidden = 8;
    cfg.embed_dim = 2;
    cfg.vocab = vocab_->size();
    model_ = std::make_shared<core::LstmSeqModel>(cfg);
    model_->set_scaler(features::StandardScaler(17.0, 9.0));

    pit_ = std::make_shared<core::PitModel>();
    pit_->set_scaler(features::StandardScaler(15.0, 6.0));

    // Joint: no covariates, 3-dim target [Rank, TrackStatus, LapStatus].
    core::SeqModelConfig jcfg;
    jcfg.cov_dim = 0;
    jcfg.target_dim = 3;
    jcfg.hidden = 8;
    jcfg.embed_dim = 2;
    jcfg.vocab = vocab_->size();
    joint_ = std::make_shared<core::LstmSeqModel>(jcfg);
    joint_->set_scaler(features::StandardScaler(17.0, 9.0));

    // DeepAR: same machinery, zero covariates, scalar target.
    core::SeqModelConfig dcfg;
    dcfg.cov_dim = 0;
    dcfg.hidden = 8;
    dcfg.embed_dim = 2;
    dcfg.vocab = vocab_->size();
    deepar_ = std::make_shared<core::LstmSeqModel>(dcfg);
    deepar_->set_scaler(features::StandardScaler(17.0, 9.0));
  }
  static void TearDownTestSuite() {
    model_.reset();
    pit_.reset();
    joint_.reset();
    deepar_.reset();
    delete vocab_;
    delete race_;
  }

  static features::CovariateConfig no_covariates() {
    features::CovariateConfig c;
    c.race_status = false;
    c.age_features = false;
    c.context_features = false;
    c.shift_features = false;
    return c;
  }

  /// Joint keeps race status in the window rows: the leading covariates
  /// become the aux target dims (ModelZoo::joint_window_config).
  static features::CovariateConfig joint_covariates() {
    features::CovariateConfig c = no_covariates();
    c.race_status = true;
    return c;
  }

  /// The differential: forecast with the independent decode, then with the
  /// tree decode, same seed — bytes and caller rng state must match. Then
  /// wrap in engines at threads {1, 2, 8} in tree mode and require the
  /// same bytes again.
  static void ExpectTreeMatchesIndependent(core::RankNetForecaster& f,
                                           int origin, int horizon,
                                           int samples, std::uint64_t seed) {
    f.set_decode_mode(core::DecodeMode::kIndependent);
    util::Rng ref_rng(seed);
    const auto ref = f.forecast(*race_, origin, horizon, samples, ref_rng);
    ASSERT_FALSE(ref.empty());
    const std::uint64_t ref_next = ref_rng();

    f.set_decode_mode(core::DecodeMode::kTree);
    util::Rng tree_rng(seed);
    const auto tree = f.forecast(*race_, origin, horizon, samples, tree_rng);
    EXPECT_TRUE(SamplesIdentical(ref, tree)) << f.name() << " direct tree";
    EXPECT_EQ(tree_rng(), ref_next) << f.name() << " rng state diverged";

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      core::ParallelForecastEngine engine(f, threads);
      util::Rng rng(seed);
      const auto out = engine.forecast(*race_, origin, horizon, samples, rng);
      EXPECT_TRUE(SamplesIdentical(ref, out))
          << f.name() << " tree at " << threads << " threads";
      EXPECT_EQ(rng(), ref_next)
          << f.name() << " engine rng state diverged at " << threads
          << " threads";
    }
    f.set_decode_mode(core::default_decode_mode());
  }

  static telemetry::RaceLog* race_;
  static features::CarVocab* vocab_;
  static std::shared_ptr<core::LstmSeqModel> model_;
  static std::shared_ptr<core::PitModel> pit_;
  static std::shared_ptr<core::LstmSeqModel> joint_;
  static std::shared_ptr<core::LstmSeqModel> deepar_;
};
telemetry::RaceLog* DecodeTreeTest::race_ = nullptr;
features::CarVocab* DecodeTreeTest::vocab_ = nullptr;
std::shared_ptr<core::LstmSeqModel> DecodeTreeTest::model_;
std::shared_ptr<core::PitModel> DecodeTreeTest::pit_;
std::shared_ptr<core::LstmSeqModel> DecodeTreeTest::joint_;
std::shared_ptr<core::LstmSeqModel> DecodeTreeTest::deepar_;

// ---------------------------------------------------------------------------
// Differential: tree == independent, per status variant.

TEST_F(DecodeTreeTest, OracleTreeBitIdentical) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  ExpectTreeMatchesIndependent(f, 50, 5, 9, 9001);
}

TEST_F(DecodeTreeTest, PitModelTreeBitIdentical) {
  // kPitModel is the interesting case: the sampled status realization
  // perturbs the teacher-forced tail covariates per sample, so branches
  // are discovered by bit-equality grouping instead of assumed per car.
  core::RankNetForecaster f(model_, pit_, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kPitModel, "mlp");
  ExpectTreeMatchesIndependent(f, 60, 4, 7, 1234);
}

TEST_F(DecodeTreeTest, JointTreeBitIdentical) {
  core::RankNetForecaster f(joint_, nullptr, *vocab_, joint_covariates(),
                            core::StatusSource::kJoint, "joint");
  ExpectTreeMatchesIndependent(f, 50, 4, 6, 4242);
}

TEST_F(DecodeTreeTest, DeepArTreeBitIdentical) {
  core::RankNetForecaster f(deepar_, nullptr, *vocab_, no_covariates(),
                            core::StatusSource::kOracle, "deepar");
  ExpectTreeMatchesIndependent(f, 55, 5, 8, 31337);
}

TEST_F(DecodeTreeTest, SingleSampleAndShortHorizonEdges) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  // One sample per car -> every branch has exactly one member; horizon 1
  // -> the decode is nothing but the shared step.
  ExpectTreeMatchesIndependent(f, 40, 1, 1, 7);
  ExpectTreeMatchesIndependent(f, 40, 1, 5, 7);
  // Early origin clamps the PitModel tail (origin - 2 < shift).
  core::RankNetForecaster p(model_, pit_, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kPitModel, "mlp");
  ExpectTreeMatchesIndependent(p, 3, 3, 4, 99);
}

TEST_F(DecodeTreeTest, EnvDefaultIsTreeAndOverridable) {
  // The process default comes from RANKNET_DECODE, read once. The ctest
  // invocation does not set it, so the default must be kTree.
  if (const char* env = std::getenv("RANKNET_DECODE")) {
    GTEST_SKIP() << "RANKNET_DECODE=" << env << " set; default not testable";
  }
  EXPECT_EQ(core::default_decode_mode(), core::DecodeMode::kTree);
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  EXPECT_EQ(f.decode_mode(), core::DecodeMode::kTree);
  f.set_decode_mode(core::DecodeMode::kIndependent);
  EXPECT_EQ(f.decode_mode(), core::DecodeMode::kIndependent);
}

// ---------------------------------------------------------------------------
// Kernel variants: the suite is re-run whole under RANKNET_KERNEL=scalar and
// =avx2 by CTest (decode_tree_kernels_* tests); this fixture additionally
// flips the variant in-process so one binary proves both sides.

class DecodeTreeKernelVariants : public DecodeTreeTest {
 protected:
  void SetUp() override {
    saved_ = tk::active_variant();
    if (!tk::cpu_supports(tk::Variant::kAvx2)) {
      GTEST_SKIP() << "CPU lacks AVX2+FMA; variant differential skipped";
    }
  }
  void TearDown() override { ASSERT_TRUE(tk::set_variant(saved_).ok()); }
  tk::Variant saved_ = tk::Variant::kScalar;
};

TEST_F(DecodeTreeKernelVariants, TreeBitIdenticalUnderAllVariants) {
  core::RankNetForecaster f(model_, pit_, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kPitModel, "mlp");
  // The reduced-precision variants are included on purpose: per-row (or
  // calibration-fixed) int8 activation scales and row-pure bf16 rounding
  // are exactly what keeps tree == independent under quantization
  // (tensor/quant.hpp determinism contract).
  for (const tk::Variant v : {tk::Variant::kScalar, tk::Variant::kAvx2,
                              tk::Variant::kBf16, tk::Variant::kInt8}) {
    ASSERT_TRUE(tk::set_variant(v).ok());
    ExpectTreeMatchesIndependent(f, 60, 4, 6, 2026);
  }
}

// ---------------------------------------------------------------------------
// Observability: branch-reuse counters must reflect the sharing actually
// achieved (Oracle shares perfectly: one branch per car).

TEST_F(DecodeTreeTest, OracleCountersReportOneBranchPerCar) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  f.set_decode_mode(core::DecodeMode::kTree);
  auto& ctr = core::DecodeTreeCounters::instance();
  ctr.reset();

  constexpr int kSamples = 9;
  util::Rng rng(11);
  const auto out = f.forecast(*race_, 50, 3, kSamples, rng);
  ASSERT_FALSE(out.empty());

  const auto cars = static_cast<std::uint64_t>(out.size());
  EXPECT_EQ(ctr.decodes(), 1u);
  EXPECT_EQ(ctr.rows(), cars * kSamples);
  // Oracle covariates are ground truth -> identical for every sample of a
  // car: exactly one branch per car, and (tail == 0) one shared row-step
  // per coalesced row.
  EXPECT_EQ(ctr.branches(), cars);
  EXPECT_EQ(ctr.shared_rows(), cars * (kSamples - 1));
  EXPECT_DOUBLE_EQ(ctr.rows_per_branch(), static_cast<double>(kSamples));
  f.set_decode_mode(core::default_decode_mode());
}

TEST_F(DecodeTreeTest, PitModelCountersShowCoalescing) {
  core::RankNetForecaster f(model_, pit_, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kPitModel, "mlp");
  f.set_decode_mode(core::DecodeMode::kTree);
  auto& ctr = core::DecodeTreeCounters::instance();
  ctr.reset();

  constexpr int kSamples = 8;
  util::Rng rng(5);
  const auto out = f.forecast(*race_, 60, 3, kSamples, rng);
  ASSERT_FALSE(out.empty());

  const auto cars = static_cast<std::uint64_t>(out.size());
  EXPECT_EQ(ctr.rows(), cars * kSamples);
  // Sampled statuses can split a car's samples into several branches, but
  // never more than one branch per row, and grouping must find at least
  // some sharing at green-flag laps.
  EXPECT_GE(ctr.branches(), cars);
  EXPECT_LE(ctr.branches(), ctr.rows());
  EXPECT_LT(ctr.branches(), ctr.rows());  // some reuse must exist
  EXPECT_GT(ctr.rows_per_branch(), 1.0);
  f.set_decode_mode(core::default_decode_mode());
}

// ---------------------------------------------------------------------------
// ForecastCache through the engine: a hit must return the exact bytes of
// the cold compute and observe the identical rng protocol.

TEST_F(DecodeTreeTest, CacheHitReturnsColdBytes) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  core::ParallelForecastEngine engine(f, 2);
  auto cache = std::make_shared<core::ForecastCache>(8);
  engine.set_forecast_cache(cache);

  auto& ctr = core::CacheCounters::instance();
  const auto hits0 = ctr.hits();
  const auto misses0 = ctr.misses();
  const auto inserts0 = ctr.insertions();

  util::Rng cold_rng(321);
  const auto cold = engine.forecast(*race_, 50, 4, 7, cold_rng);
  const std::uint64_t cold_next = cold_rng();
  EXPECT_EQ(cache->size(), 1u);
  EXPECT_EQ(ctr.misses(), misses0 + 1);
  EXPECT_EQ(ctr.insertions(), inserts0 + 1);

  util::Rng hit_rng(321);
  const auto hit = engine.forecast(*race_, 50, 4, 7, hit_rng);
  EXPECT_TRUE(SamplesIdentical(cold, hit));
  // The hit consumes exactly the one base draw a cold forecast would.
  EXPECT_EQ(hit_rng(), cold_next);
  EXPECT_EQ(ctr.hits(), hits0 + 1);
  EXPECT_EQ(cache->size(), 1u);
}

TEST_F(DecodeTreeTest, CacheKeyDiscriminatesRequests) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  core::ParallelForecastEngine engine(f, 1);
  auto cache = std::make_shared<core::ForecastCache>(16);
  engine.set_forecast_cache(cache);

  util::Rng r1(7);
  (void)engine.forecast(*race_, 50, 4, 7, r1);
  EXPECT_EQ(cache->size(), 1u);

  // Different seed -> different base -> different entry.
  util::Rng r2(8);
  (void)engine.forecast(*race_, 50, 4, 7, r2);
  EXPECT_EQ(cache->size(), 2u);
  // Different origin / horizon / sample count each miss too.
  util::Rng r3(7);
  (void)engine.forecast(*race_, 51, 4, 7, r3);
  util::Rng r4(7);
  (void)engine.forecast(*race_, 50, 3, 7, r4);
  util::Rng r5(7);
  (void)engine.forecast(*race_, 50, 4, 6, r5);
  EXPECT_EQ(cache->size(), 5u);
  // Model version bump invalidates logically (new key), old entry remains
  // until evicted.
  engine.set_model_version(engine.model_version() + 1);
  util::Rng r6(7);
  (void)engine.forecast(*race_, 50, 4, 7, r6);
  EXPECT_EQ(cache->size(), 6u);
}

TEST_F(DecodeTreeTest, CacheSharedAcrossEnginesAndRaceStateSensitive) {
  core::RankNetForecaster f(model_, nullptr, *vocab_,
                            features::CovariateConfig{},
                            core::StatusSource::kOracle, "oracle");
  auto cache = std::make_shared<core::ForecastCache>(8);
  core::ParallelForecastEngine a(f, 1), b(f, 2);
  a.set_forecast_cache(cache);
  b.set_forecast_cache(cache);

  auto& ctr = core::CacheCounters::instance();
  util::Rng ra(55);
  const auto cold = a.forecast(*race_, 50, 4, 7, ra);
  const auto hits0 = ctr.hits();
  util::Rng rb(55);
  const auto hit = b.forecast(*race_, 50, 4, 7, rb);
  EXPECT_TRUE(SamplesIdentical(cold, hit));
  EXPECT_EQ(ctr.hits(), hits0 + 1);

  // A different race state (same request otherwise) must not hit.
  const auto other = sim::simulate_race({"Indy500", 2019, 201,
                                         sim::Usage::kTest});
  EXPECT_NE(core::race_state_digest(*race_), core::race_state_digest(other));
}

TEST_F(DecodeTreeTest, DegradedForecastsAreNeverCached) {
  core::RankNetForecaster primary(model_, nullptr, *vocab_,
                                  features::CovariateConfig{},
                                  core::StatusSource::kOracle, "oracle");
  core::ParallelForecastEngine engine(primary, 2);
  auto cache = std::make_shared<core::ForecastCache>(8);
  engine.set_forecast_cache(cache);

  core::ParallelForecastEngine::DegradationPolicy policy;
  policy.fallback = std::make_shared<core::CurRankForecaster>();
  policy.series_damaged = [](int car_id, int) { return car_id % 2 == 1; };
  ASSERT_TRUE(engine.set_degradation_policy(policy).ok());

  util::Rng rng(9);
  const auto out = engine.forecast(*race_, 30, 4, 5, rng);
  ASSERT_FALSE(out.empty());
  EXPECT_GT(engine.degradation().fallback_cars(), 0u);
  // A degraded result must not be replayed after the system recovers.
  EXPECT_EQ(cache->size(), 0u);
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "ml/arima.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/online_linear.hpp"
#include "ml/random_forest.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace ranknet;
using tensor::Matrix;
using util::Rng;

/// y = 3*x0 - 2*x1 + noise on [0,1]^2.
struct LinearProblem {
  Matrix x;
  std::vector<double> y;
};
LinearProblem make_linear(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  LinearProblem p;
  p.x = Matrix(n, 2);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform();
    p.x(i, 1) = rng.uniform();
    p.y[i] = 3.0 * p.x(i, 0) - 2.0 * p.x(i, 1) + rng.normal(0.0, noise);
  }
  return p;
}

double mse(const ml::Regressor& model, const Matrix& x,
           const std::vector<double>& y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double e = model.predict_one(x.row(i)) - y[i];
    acc += e * e;
  }
  return acc / static_cast<double>(x.rows());
}

TEST(DecisionTree, FitsStepFunctionExactly) {
  // y = 1{x0 > 0.5}: a depth-1 tree should nail it.
  Rng rng(1);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  ml::TreeConfig cfg;
  cfg.max_depth = 3;
  ml::DecisionTree tree(cfg);
  tree.fit(x, y);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{0.2}), 0.0, 1e-9);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{0.9}), 1.0, 1e-9);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const auto p = make_linear(500, 0.0, 2);
  ml::TreeConfig cfg;
  cfg.max_depth = 4;
  ml::DecisionTree tree(cfg);
  tree.fit(p.x, p.y);
  EXPECT_LE(tree.depth(), 5);  // root at depth 1
  EXPECT_GT(tree.num_nodes(), 3u);
}

TEST(DecisionTree, ConstantTargetSingleLeaf) {
  Matrix x(50, 2, 0.5);
  std::vector<double> y(50, 7.0);
  ml::DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{0.0, 0.0}), 7.0);
}

TEST(RandomForest, BeatsMeanBaselineOnLinear) {
  const auto train = make_linear(800, 0.1, 3);
  const auto test = make_linear(200, 0.1, 4);
  ml::ForestConfig cfg;
  cfg.num_trees = 30;
  ml::RandomForest forest(cfg);
  forest.fit(train.x, train.y);
  EXPECT_EQ(forest.num_trees(), 30u);
  const double model_mse = mse(forest, test.x, test.y);
  const double var = util::variance(test.y);
  EXPECT_LT(model_mse, 0.3 * var);
}

TEST(Gbdt, DrivesTrainErrorDown) {
  const auto train = make_linear(600, 0.05, 5);
  ml::GbdtConfig cfg;
  cfg.num_rounds = 80;
  ml::Gbdt model(cfg);
  model.fit(train.x, train.y);
  EXPECT_GT(model.num_rounds(), 40u);
  EXPECT_LT(mse(model, train.x, train.y), 0.05);
}

TEST(Gbdt, MoreRoundsHelp) {
  const auto train = make_linear(600, 0.05, 6);
  const auto test = make_linear(200, 0.05, 7);
  ml::GbdtConfig small;
  small.num_rounds = 5;
  ml::GbdtConfig big;
  big.num_rounds = 100;
  ml::Gbdt a(small), b(big);
  a.fit(train.x, train.y);
  b.fit(train.x, train.y);
  EXPECT_LT(mse(b, test.x, test.y), mse(a, test.x, test.y));
}

TEST(Svr, FitsSmoothFunction) {
  // y = sin(2*pi*x): RBF SVR should track it closely.
  Rng rng(8);
  Matrix x(300, 1);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(2.0 * M_PI * x(i, 0));
  }
  ml::SvrConfig cfg;
  cfg.epsilon = 0.05;
  cfg.c = 20.0;
  ml::Svr svr(cfg);
  svr.fit(x, y);
  EXPECT_GT(svr.num_support_vectors(), 5u);
  double max_err = 0.0;
  for (double t = 0.05; t < 1.0; t += 0.05) {
    max_err = std::max(max_err, std::abs(svr.predict_one(
                                    std::vector<double>{t}) -
                                std::sin(2.0 * M_PI * t)));
  }
  EXPECT_LT(max_err, 0.25);
}

TEST(Svr, LinearKernelRecoversLine) {
  const auto p = make_linear(400, 0.01, 9);
  ml::SvrConfig cfg;
  cfg.kernel = ml::SvrKernel::kLinear;
  cfg.epsilon = 0.02;
  cfg.c = 50.0;
  ml::Svr svr(cfg);
  svr.fit(p.x, p.y);
  EXPECT_LT(mse(svr, p.x, p.y), 0.02);
}

TEST(Svr, SubsamplesHugeProblems) {
  const auto p = make_linear(4000, 0.1, 10);
  ml::SvrConfig cfg;
  cfg.max_samples = 500;
  ml::Svr svr(cfg);
  svr.fit(p.x, p.y);  // must not blow up memory / time
  EXPECT_LE(svr.num_support_vectors(), 500u);
}

TEST(Arima, RecoversArCoefficients) {
  // AR(1): z_t = 0.8 z_{t-1} + eps.
  Rng rng(11);
  std::vector<double> z{0.0};
  for (int t = 1; t < 3000; ++t) {
    z.push_back(0.8 * z.back() + rng.normal(0.0, 0.5));
  }
  ml::ArimaConfig cfg;
  cfg.p = 1;
  cfg.d = 0;
  ml::Arima model(cfg);
  model.fit(z);
  ASSERT_EQ(model.coefficients().size(), 1u);
  EXPECT_NEAR(model.coefficients()[0], 0.8, 0.05);
  EXPECT_NEAR(model.residual_stddev(), 0.5, 0.05);
}

TEST(Arima, DifferencingHandlesLinearTrend) {
  // z_t = 2t + noise: with d=1 the forecast must continue the slope.
  Rng rng(12);
  std::vector<double> z;
  for (int t = 0; t < 200; ++t) z.push_back(2.0 * t + rng.normal(0.0, 0.1));
  ml::Arima model({2, 1});
  model.fit(z);
  const auto fc = model.forecast(5);
  ASSERT_EQ(fc.size(), 5u);
  for (int h = 0; h < 5; ++h) {
    EXPECT_NEAR(fc[static_cast<std::size_t>(h)], 2.0 * (200 + h), 2.0);
  }
}

TEST(Arima, SamplePathsCenterOnForecast) {
  Rng rng(13);
  std::vector<double> z;
  for (int t = 0; t < 300; ++t) z.push_back(rng.normal(5.0, 1.0));
  ml::Arima model({1, 0});
  model.fit(z);
  util::Rng sample_rng(14);
  const auto paths = model.sample_paths(3, 400, sample_rng);
  ASSERT_EQ(paths.size(), 400u);
  std::vector<double> last;
  for (const auto& p : paths) last.push_back(p[2]);
  EXPECT_NEAR(util::mean(last), model.forecast(3)[2], 0.25);
  EXPECT_GT(util::stddev(last), 0.5);  // real spread from innovations
}

TEST(Arima, ShortSeriesDegradeGracefully) {
  ml::Arima model({3, 1});
  model.fit(std::vector<double>{1.0, 2.0});
  const auto fc = model.forecast(3);
  ASSERT_EQ(fc.size(), 3u);
  for (double v : fc) EXPECT_TRUE(std::isfinite(v));
}

TEST(OnlineLinearFit, RecoversLineFromNoisyStream) {
  Rng rng(21);
  ml::OnlineLinearFit fit;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.0, 20.0);
    fit.add(x, 0.8 * x + 3.0 + rng.normal(0.0, 0.1));
  }
  EXPECT_EQ(fit.observations(), 2000u);
  const auto c = fit.fit();
  EXPECT_NEAR(c.slope, 0.8, 0.01);
  EXPECT_NEAR(c.intercept, 3.0, 0.1);
}

TEST(OnlineLinearFit, DecayTracksDrift) {
  // First regime y = x, second regime y = -x + 10. With heavy decay between
  // the regimes, the fit must follow the recent one; without decay the
  // all-time fit is pulled toward the stale regime.
  auto feed = [](ml::OnlineLinearFit& fit, bool with_decay) {
    Rng rng(22);
    for (int i = 0; i < 500; ++i) {
      const double x = rng.uniform(0.0, 10.0);
      fit.add(x, x + rng.normal(0.0, 0.05));
    }
    if (with_decay) fit.decay(0.01);
    for (int i = 0; i < 500; ++i) {
      const double x = rng.uniform(0.0, 10.0);
      fit.add(x, -x + 10.0 + rng.normal(0.0, 0.05));
    }
  };
  ml::OnlineLinearFit decayed, stale;
  feed(decayed, true);
  feed(stale, false);
  EXPECT_NEAR(decayed.fit().slope, -1.0, 0.02);
  EXPECT_GT(stale.fit().slope, -0.6) << "undecayed fit should stay blended";
  EXPECT_LT(decayed.weight(), stale.weight());
}

TEST(OnlineLinearFit, DegenerateInputsNeverProduceNanCoefficients) {
  // Empty, single-point, and all-x-equal designs fall back to a constant
  // predictor — the online loop must never emit a NaN-coefficient artifact.
  ml::OnlineLinearFit empty;
  auto c = empty.fit();
  EXPECT_EQ(c.slope, 0.0);
  EXPECT_TRUE(std::isfinite(c.intercept));

  ml::OnlineLinearFit single;
  single.add(4.0, 7.0);
  c = single.fit();
  EXPECT_EQ(c.slope, 0.0);
  EXPECT_NEAR(c.intercept, 7.0, 1e-9);

  ml::OnlineLinearFit flat;
  for (int i = 0; i < 10; ++i) flat.add(2.0, static_cast<double>(i));
  c = flat.fit();
  EXPECT_TRUE(std::isfinite(c.slope));
  EXPECT_TRUE(std::isfinite(c.intercept));
  EXPECT_NEAR(c.slope * 2.0 + c.intercept, 4.5, 0.1);

  // Fully decayed statistics are as good as empty — still finite.
  ml::OnlineLinearFit decayed_out;
  decayed_out.add(1.0, 1.0);
  decayed_out.add(2.0, 2.0);
  decayed_out.decay(0.0);
  c = decayed_out.fit();
  EXPECT_TRUE(std::isfinite(c.slope));
  EXPECT_TRUE(std::isfinite(c.intercept));

  decayed_out.reset();
  EXPECT_EQ(decayed_out.observations(), 0u);
  EXPECT_EQ(decayed_out.weight(), 0.0);
}

TEST(OnlineLinearFit, DeterministicOverReplayedStream) {
  auto run = [] {
    Rng rng(23);
    ml::OnlineLinearFit fit;
    for (int i = 0; i < 300; ++i) {
      fit.add(rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0));
      if (i % 50 == 49) fit.decay(0.9);
    }
    return fit.fit();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.slope, b.slope);
  EXPECT_EQ(a.intercept, b.intercept);
}

}  // namespace

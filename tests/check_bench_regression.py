#!/usr/bin/env python3
"""Gate benchmark JSON against the committed baseline.

Usage:
  # after: ./build/bench/micro_kernels --benchmark_out=BENCH_kernels.json
  tests/check_bench_regression.py BENCH_kernels.json            # check
  tests/check_bench_regression.py BENCH_kernels.json --update   # rebaseline
  # after: ./build/bench/fig10_batch_scaling   (writes BENCH_fig10.json)
  tests/check_bench_regression.py BENCH_fig10.json

Three input formats are understood:
  * google-benchmark output ("benchmarks" key): entry name -> cpu_time ns.
  * the fig10 bench's own JSON ("mc_decode" key): synthesized entries
    "fig10_rollout_us_per_sample/<S>" (end-to-end MC rollout, ns/sample)
    and "fig10_cache_hit_us_per_sample/<S>" (forecast-cache replay) so the
    serving path is gated by the same ratio check as the microkernels.
    Rows carrying a "variant" field (the reduced-precision axis) become
    "fig10_rollout_us_per_sample/<S>@<variant>" — the default rows' names
    are unchanged so old baselines keep matching.
  * the serve_load bench's JSON ("serve_load" key): per configuration
    (window x fault profile x deadline), synthesized entries
    "serve_ns_per_forecast/<cfg>" (1e9 / forecasts_per_sec — inverted so
    "bigger = slower" matches every other entry), "serve_p50/<cfg>" and
    "serve_p99/<cfg>" (request latency quantiles, ns, straight from the
    server's serve.request.latency obs histogram).
  * the season_fleet bench's JSON ("season_fleet" key): per shard count,
    synthesized entries "season_ns_per_job/shards<N>" (1e9 /
    jobs_per_sec, same big-is-slow inversion as serve_load), gating the
    whole-season fleet path. The races/s headline is derived, so gating
    ns/job gates it too.

Compares each entry (e.g. "BM_GemmLstmGates<avx2>/256") against
tests/bench_baseline.json and fails — exit code 1 — when any entry is more
than --tolerance (default 15%) slower. Entries present in only one file are
reported but never fail the run, so adding or retiring a benchmark doesn't
require a lockstep baseline edit.

This is a manually-run tool, not a ctest entry: the box that grows this
repo is a single shared core where scalar GEMM timing swings tens of
percent with heap-allocation layout alone (see DESIGN.md, "Kernel dispatch
& batched sampling"). Run it on a quiet machine before and after touching
src/tensor, and rebaseline with --update in the same commit as an
intentional perf change.
"""

import argparse
import json
import sys
from pathlib import Path

BASELINE = Path(__file__).resolve().parent / "bench_baseline.json"


def load_times(path):
    """name -> time (ns) for real benchmark entries (not aggregates)."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    if "mc_decode" in doc:  # fig10_batch_scaling output
        for row in doc["mc_decode"]:
            name = f"fig10_rollout_us_per_sample/{row['num_samples']}"
            if "variant" in row:  # reduced-precision axis row
                name += f"@{row['variant']}"
            out[name] = float(row["us_per_sample"]) * 1e3  # us -> ns
        for row in doc.get("forecast_cache", []):
            name = f"fig10_cache_hit_us_per_sample/{row['num_samples']}"
            out[name] = float(row["hit_us_per_sample"]) * 1e3
    if "serve_load" in doc:  # serve_load bench output
        for row in doc["serve_load"]:
            cfg = (f"w{row['window']}_{row['profile']}"
                   f"_d{row['deadline_us']}")
            out[f"serve_ns_per_forecast/{cfg}"] = (
                1e9 / float(row["forecasts_per_sec"]))
            out[f"serve_p50/{cfg}"] = float(row["p50_us"]) * 1e3
            out[f"serve_p99/{cfg}"] = float(row["p99_us"]) * 1e3
    if "season_fleet" in doc:  # season_fleet bench output
        for row in doc["season_fleet"]:
            name = f"season_ns_per_job/shards{row['shards']}"
            out[name] = 1e9 / float(row["jobs_per_sec"])
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = float(b["cpu_time"])
    if not out:
        sys.exit(f"error: no benchmark entries in {path}")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("results", help="BENCH_kernels.json from micro_kernels")
    ap.add_argument("--baseline", default=str(BASELINE),
                    help=f"baseline file (default: {BASELINE})")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed slowdown fraction (default 0.15 = 15%%)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from these results and exit")
    args = ap.parse_args()

    current = load_times(args.results)

    if args.update:
        # Merge, don't replace: kernel and fig10 results live in one
        # baseline file but come from different binaries, so rebaselining
        # one must not drop the other's entries.
        merged = {}
        try:
            with open(args.baseline) as f:
                merged = json.load(f)["cpu_time_ns"]
        except FileNotFoundError:
            pass
        merged.update(current)
        with open(args.baseline, "w") as f:
            json.dump({"cpu_time_ns": dict(sorted(merged.items()))}, f,
                      indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(current)} entries merged, {len(merged)} total)")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)["cpu_time_ns"]
    except FileNotFoundError:
        sys.exit(f"error: {args.baseline} missing — generate it with "
                 f"--update")

    failures = []
    print(f"{'benchmark':44s} {'baseline':>12s} {'current':>12s} "
          f"{'ratio':>7s}")
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"{name:44s} {baseline[name]:12.0f} {'(gone)':>12s}")
            continue
        if name not in baseline:
            print(f"{name:44s} {'(new)':>12s} {current[name]:12.0f}")
            continue
        ratio = current[name] / baseline[name]
        flag = ""
        if ratio > 1.0 + args.tolerance:
            failures.append((name, ratio))
            flag = "  REGRESSION"
        print(f"{name:44s} {baseline[name]:12.0f} {current[name]:12.0f} "
              f"{ratio:6.2f}x{flag}")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    print(f"\nok: no entry slower than {1 + args.tolerance:.2f}x baseline "
          f"({len(current)} checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
